// Figure 8 reproduction (the paper's main result): effective throughput of
// vLLM, Sarathi-Serve, DeepSpeed-FastGen and Apt-Serve on ShareGPT /
// HumanEval / LongBench with OPT-13B / 30B / 66B, under the Table 3 SLOs.
// Prints the attainment-vs-rate series for each subplot plus the effective
// throughput at the 90% and 60% thresholds and Apt-Serve's speedups.
#include "bench/bench_util.h"

using namespace aptserve;
using namespace aptserve::bench;

namespace {

struct Subplot {
  DatasetProfile profile;
  ModelSpec model;
  SloSpec slo;
  std::vector<double> rates;
};

// Table 3 SLOs. Rate grids scale down for the larger (slower per-GPU-dollar)
// models, mirroring the paper's per-subplot x ranges.
std::vector<Subplot> MakeSubplots() {
  std::vector<Subplot> out;
  const std::vector<double> sg13 = {1, 2, 3, 4, 5, 6, 8, 10};
  const std::vector<double> sg_big = {0.5, 1, 1.5, 2, 3, 4, 5, 6};
  const std::vector<double> he13 = {2, 4, 6, 8, 10, 12, 16, 20};
  const std::vector<double> he_big = {1, 2, 4, 6, 8, 10, 12, 14};
  const std::vector<double> lb13 = {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0};
  const std::vector<double> lb_big = {0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0,
                                      2.5};
  out.push_back({DatasetProfile::ShareGpt(), ModelSpec::Opt13B(),
                 SloSpec{1.0, 1.0}, sg13});
  out.push_back({DatasetProfile::ShareGpt(), ModelSpec::Opt30B(),
                 SloSpec{1.5, 1.0}, sg_big});
  out.push_back({DatasetProfile::ShareGpt(), ModelSpec::Opt66B(),
                 SloSpec{2.0, 1.0}, sg_big});
  out.push_back({DatasetProfile::HumanEval(), ModelSpec::Opt13B(),
                 SloSpec{0.5, 0.5}, he13});
  out.push_back({DatasetProfile::HumanEval(), ModelSpec::Opt30B(),
                 SloSpec{1.0, 0.5}, he_big});
  out.push_back({DatasetProfile::HumanEval(), ModelSpec::Opt66B(),
                 SloSpec{1.5, 0.5}, he_big});
  out.push_back({DatasetProfile::LongBench(), ModelSpec::Opt13B(),
                 SloSpec{4.0, 1.0}, lb13});
  out.push_back({DatasetProfile::LongBench(), ModelSpec::Opt30B(),
                 SloSpec{4.5, 1.0}, lb_big});
  out.push_back({DatasetProfile::LongBench(), ModelSpec::Opt66B(),
                 SloSpec{5.0, 1.0}, lb_big});
  return out;
}

}  // namespace

int main() {
  const std::vector<std::string> systems = {"vLLM", "Sarathi", "FastGen",
                                            "Apt"};
  for (const Subplot& sp : MakeSubplots()) {
    RunSpec spec;
    spec.profile = sp.profile;
    spec.model = sp.model;
    spec.slo = sp.slo;
    spec.num_requests = 500;
    const std::string title =
        "Figure 8: " + sp.profile.name + " / " + sp.model.name;
    PrintRateSweep(title.c_str(), spec, sp.rates, systems);

    for (double threshold : {0.9, 0.6}) {
      std::printf("effective throughput @%2.0f%%:", threshold * 100);
      double apt = 0, vllm = 0;
      for (const auto& s : systems) {
        const double t = EffectiveThroughput(spec, s, sp.rates, threshold);
        std::printf("  %s=%.2f", s.c_str(), t);
        if (s == "Apt") apt = t;
        if (s == "vLLM") vllm = t;
      }
      if (vllm > 0) std::printf("  | Apt/vLLM=%.1fx", apt / vllm);
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  std::printf("\nExpected shape (paper): Apt-Serve sustains ~1.7-2.8x the "
              "rate of the baselines at 90%%\nattainment and up to ~3-8.8x "
              "at 60%%, with the largest gains on ShareGPT/LongBench.\n");
  return 0;
}
