// Ablation (DESIGN.md): cache block size. Small blocks reduce internal
// fragmentation (more admissible requests per GB) but increase map
// overhead; large blocks waste the tail of every request's last block —
// the §2.2 tradeoff that motivated block-wise storage in the first place.
#include "bench/bench_util.h"

using namespace aptserve;
using namespace aptserve::bench;

int main() {
  const SloSpec slo{1.0, 1.0};
  std::printf("=== Ablation: block size (ShareGPT @ 5 req/s, OPT-13B, "
              "Apt-Serve) ===\n");
  std::printf("%12s %12s %12s %14s %12s\n", "block_size", "pool_blocks",
              "SLO(%)", "peak_blocks", "util(%)");
  for (int32_t block_size : {4, 8, 16, 32, 64, 128}) {
    TraceConfig tc;
    tc.profile = DatasetProfile::ShareGpt();
    tc.num_requests = 500;
    tc.rate_per_sec = 5.0;
    tc.seed = 77;
    auto trace = BuildTrace(tc);
    if (!trace.ok()) return 1;
    AptConfig ac;
    ac.slo = slo;
    AptScheduler sched(ac);
    const ModelSpec model = ModelSpec::Opt13B();
    CostModel cm(model, ClusterSpec::ForModel(model));
    SimulatorConfig sc;
    sc.block_size = block_size;
    Simulator sim(cm, sc);
    auto result = sim.Run(*trace, &sched, slo);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%12d %12d %12.1f %14d %12.1f\n", block_size,
                result->pool_blocks, 100 * result->report.slo_attainment,
                result->peak_blocks,
                100.0 * result->peak_blocks / result->pool_blocks);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: attainment is stable across moderate block "
              "sizes and degrades for\nvery large blocks (fragmentation "
              "shrinks the effective pool).\n");
  return 0;
}
