// Extension bench (paper §7 future work): output-length prediction feeding
// the admission decision. Compares standard Apt-Serve against the
// predictive variant (online learned output lengths; admission accounts
// for predicted final memory) across rates and prediction quantiles.
#include "bench/bench_util.h"

using namespace aptserve;
using namespace aptserve::bench;

namespace {

SloReport RunApt(const RunSpec& spec, bool predict, double quantile) {
  TraceConfig tc;
  tc.profile = spec.profile;
  tc.num_requests = spec.num_requests;
  tc.rate_per_sec = spec.rate;
  tc.seed = spec.seed;
  auto trace = BuildTrace(tc);
  if (!trace.ok()) std::abort();
  AptConfig c;
  c.slo = spec.slo;
  c.enable_prediction = predict;
  c.prediction_quantile = quantile;
  AptScheduler sched(c);
  CostModel cm(spec.model, ClusterSpec::ForModel(spec.model));
  Simulator sim(cm, SimulatorConfig{});
  auto result = sim.Run(*trace, &sched, spec.slo);
  if (!result.ok()) std::abort();
  return result->report;
}

}  // namespace

int main() {
  std::printf("=== Extension: prediction-based admission (ShareGPT, "
              "OPT-13B) ===\n");
  std::printf("%10s %10s %12s %12s %12s | %14s %14s\n", "rate(r/s)",
              "base(%)", "pred q=0.5", "pred q=0.7", "pred q=0.9",
              "base preempts", "pred preempts");
  for (double rate : {3.0, 5.0, 7.0}) {
    RunSpec spec;
    spec.rate = rate;
    spec.num_requests = 500;
    const SloReport base = RunApt(spec, false, 0.5);
    const SloReport q5 = RunApt(spec, true, 0.5);
    const SloReport q7 = RunApt(spec, true, 0.7);
    const SloReport q9 = RunApt(spec, true, 0.9);
    std::printf("%10.1f %10.1f %12.1f %12.1f %12.1f | %14ld %14ld\n", rate,
                100 * base.slo_attainment, 100 * q5.slo_attainment,
                100 * q7.slo_attainment, 100 * q9.slo_attainment,
                base.preemptions, q5.preemptions);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: predictive admission trims the "
              "admit-then-evict churn (fewer\npreemptions); higher "
              "quantiles are increasingly conservative and eventually "
              "under-admit.\n");
  return 0;
}
