// End-to-end on the REAL engine: serve a burst of requests on the mini
// transformer under FCFS vs Apt-Serve with a deliberately small pool, so
// the hybrid cache and value-based scheduling act on real memory and real
// compute (measured rho; virtual timeline = measured compute seconds).
#include <cstdio>

#include "baselines/fcfs_scheduler.h"
#include "bench/bench_util.h"
#include "core/apt_scheduler.h"
#include "engine/serving_engine.h"
#include "workload/arrival.h"

using namespace aptserve;

namespace {

std::vector<Request> BurstTrace(int32_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Request> trace;
  for (int32_t i = 0; i < n; ++i) {
    Request r;
    r.id = i;
    r.prompt_len = static_cast<int32_t>(rng.UniformInt(24, 96));
    r.output_len = static_cast<int32_t>(rng.UniformInt(8, 48));
    r.arrival = 0.0;  // burst: everyone arrives at once
    trace.push_back(r);
  }
  return trace;
}

}  // namespace

int main() {
  ServingEngineConfig cfg;
  cfg.model = ModelConfig::Small();
  cfg.model.max_seq_len = 256;
  cfg.num_blocks = 160;  // tight pool: ~10 KV requests of ~64 tokens
  cfg.block_size = 8;
  cfg.slo = SloSpec{1e9, 1e9};  // timing varies by host; report latencies

  auto trace = BurstTrace(24, 17);
  std::printf("=== Real-engine serving: 24-request burst on the mini "
              "transformer (tight pool) ===\n");
  std::printf("%-12s %14s %14s %14s %12s %12s\n", "scheduler",
              "compute(s)", "mean TTFT(s)", "p99 TTFT(s)", "preempts",
              "conversions");
  for (int k = 0; k < 2; ++k) {
    ServingEngine serving(cfg);
    FcfsScheduler fcfs;
    AptConfig ac;
    ac.slo = SloSpec{2.0, 2.0};  // drives the value model, not the report
    AptScheduler apt(ac);
    Scheduler* sched = k == 0 ? static_cast<Scheduler*>(&fcfs)
                              : static_cast<Scheduler*>(&apt);
    auto result = serving.Serve(trace, sched);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", sched->name().c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-12s %14.2f %14.2f %14.2f %12ld %12ld\n",
                sched->name().c_str(), result->compute_seconds,
                result->report.mean_ttft, result->report.p99_ttft,
                result->preemptions, result->report.conversions);
    bench::JsonObject e;
    e.Str("scheduler", sched->name())
        .Int("num_requests", static_cast<int64_t>(trace.size()))
        .Num("compute_seconds", result->compute_seconds)
        .Num("mean_ttft_s", result->report.mean_ttft)
        .Num("p99_ttft_s", result->report.p99_ttft)
        .Num("tokens_per_sec",
             result->compute_seconds > 0
                 ? result->tokens_generated / result->compute_seconds
                 : 0.0)
        .Int("tokens_generated", result->tokens_generated)
        .Int("preemptions", result->preemptions)
        .Int("conversions", result->report.conversions)
        .Num("rho_seconds_per_token", result->rho_seconds_per_token);
    bench::BenchJson::Instance().AddEntry(std::move(e));
    if (k == 1) {
      std::printf("measured rho = %.1f us/token (real Eq. 6 calibration "
                  "fed to the scheduler)\n",
                  1e6 * result->rho_seconds_per_token);
    }
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: Apt-Serve admits more of the burst "
              "concurrently (hidden cache)\nand orders admissions by value, "
              "cutting mean/tail TTFT on identical hardware.\n");
  return 0;
}
