// The correctness core of the hybrid cache (paper §3.1, Figure 3): for any
// token history, decoding with the KV cache, decoding with the hidden cache
// (K/V re-projected on the fly from cached layer inputs), and full
// recomputation must produce identical logits. Unlike KV-cache compression
// (paper §7), the hidden cache is lossless by construction — these tests
// pin that claim down numerically.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "cache/block_pool.h"
#include "cache/hybrid_assigner.h"
#include "engine/block_storage.h"
#include "engine/transformer.h"

namespace aptserve {
namespace {

constexpr float kTol = 2e-4f;  // fp32 accumulation-order tolerance

std::vector<int32_t> MakeTokens(int32_t n, uint64_t seed, int32_t vocab) {
  std::vector<int32_t> t(n);
  uint64_t x = seed * 2654435761u + 1;
  for (int32_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    t[i] = static_cast<int32_t>(x % vocab);
  }
  return t;
}

/// Runs the full sequence through CachedStep with the given cache type and
/// returns the logits at the last position.
std::vector<float> RunCached(const TransformerModel& model, CacheType type,
                             const std::vector<int32_t>& tokens,
                             int32_t block_size = 4) {
  const ModelConfig& cfg = model.config();
  const int32_t blocks = 2 * (static_cast<int32_t>(tokens.size()) /
                                  block_size +
                              2);
  BlockPool pool(blocks, block_size);
  BlockStorage storage(blocks, block_size, cfg.n_layers, cfg.d_model);
  HybridCacheAssigner assigner(&pool);
  EXPECT_TRUE(assigner
                  .CreateFilled(1, type, static_cast<int32_t>(tokens.size()))
                  .ok());
  const CacheMap* map = assigner.Find(1);
  std::vector<float> logits;
  for (size_t pos = 0; pos < tokens.size(); ++pos) {
    Status st = model.CachedStep(tokens[pos], static_cast<int32_t>(pos), *map,
                                 &storage, &logits);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return logits;
}

void ExpectClose(const std::vector<float>& a, const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], kTol) << "logit index " << i;
  }
}

class EquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int32_t, uint64_t>> {};

TEST_P(EquivalenceTest, KvHiddenAndFullRecomputeMatch) {
  const auto [len, seed] = GetParam();
  const ModelConfig cfg = ModelConfig::Tiny();
  TransformerModel model(ModelWeights::Random(cfg, seed));
  const auto tokens = MakeTokens(len, seed + 99, cfg.vocab_size);

  auto full = model.ForwardFull(tokens);
  ASSERT_TRUE(full.ok());
  const auto kv = RunCached(model, CacheType::kKV, tokens);
  const auto hidden = RunCached(model, CacheType::kHidden, tokens);

  ExpectClose(kv, *full);
  ExpectClose(hidden, *full);
  ExpectClose(hidden, kv);
}

INSTANTIATE_TEST_SUITE_P(
    LengthsAndSeeds, EquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 16, 33, 64),
                       ::testing::Values(1u, 7u, 42u)));

TEST(EquivalenceTest, GreedyContinuationsMatchTokenByToken) {
  // Generate 12 tokens step by step with each cache type and compare the
  // argmax choices, which is what serving actually streams to users.
  const ModelConfig cfg = ModelConfig::Tiny();
  TransformerModel model(ModelWeights::Random(cfg, 5));
  const auto prompt = MakeTokens(9, 13, cfg.vocab_size);

  auto generate = [&](CacheType type) {
    BlockPool pool(64, 4);
    BlockStorage storage(64, 4, cfg.n_layers, cfg.d_model);
    HybridCacheAssigner assigner(&pool);
    std::vector<int32_t> tokens = prompt;
    EXPECT_TRUE(assigner.CreateFilled(1, type, 9).ok());
    std::vector<float> logits;
    for (int32_t pos = 0; pos < 9; ++pos) {
      EXPECT_TRUE(model
                      .CachedStep(tokens[pos], pos, *assigner.Find(1),
                                  &storage, &logits)
                      .ok());
    }
    std::vector<int32_t> out;
    for (int32_t step = 0; step < 12; ++step) {
      int32_t best = 0;
      for (int32_t v = 1; v < cfg.vocab_size; ++v) {
        if (logits[v] > logits[best]) best = v;
      }
      out.push_back(best);
      tokens.push_back(best);
      const int32_t pos = static_cast<int32_t>(tokens.size()) - 1;
      EXPECT_TRUE(assigner.Append(1, 1).ok());
      EXPECT_TRUE(model
                      .CachedStep(tokens[pos], pos, *assigner.Find(1),
                                  &storage, &logits)
                      .ok());
    }
    return out;
  };

  EXPECT_EQ(generate(CacheType::kKV), generate(CacheType::kHidden));
}

TEST(EquivalenceTest, BlockSizeDoesNotAffectResults) {
  const ModelConfig cfg = ModelConfig::Tiny();
  TransformerModel model(ModelWeights::Random(cfg, 21));
  const auto tokens = MakeTokens(20, 3, cfg.vocab_size);
  const auto a = RunCached(model, CacheType::kHidden, tokens, /*block=*/1);
  const auto b = RunCached(model, CacheType::kHidden, tokens, /*block=*/7);
  const auto c = RunCached(model, CacheType::kHidden, tokens, /*block=*/64);
  ExpectClose(a, b);
  ExpectClose(b, c);
}

TEST(TransformerTest, RejectsBadInput) {
  const ModelConfig cfg = ModelConfig::Tiny();
  TransformerModel model(ModelWeights::Random(cfg, 1));
  EXPECT_TRUE(model.ForwardFull({}).status().IsInvalidArgument());
  EXPECT_TRUE(model.ForwardFull({cfg.vocab_size}).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(model.ForwardFull({-1}).status().IsInvalidArgument());
  std::vector<int32_t> too_long(cfg.max_seq_len + 1, 0);
  EXPECT_TRUE(model.ForwardFull(too_long).status().IsInvalidArgument());
}

TEST(TransformerTest, CachedStepRequiresAllocatedMap) {
  const ModelConfig cfg = ModelConfig::Tiny();
  TransformerModel model(ModelWeights::Random(cfg, 1));
  BlockPool pool(8, 4);
  BlockStorage storage(8, 4, cfg.n_layers, cfg.d_model);
  HybridCacheAssigner assigner(&pool);
  ASSERT_TRUE(assigner.CreateFilled(1, CacheType::kKV, 2).ok());
  std::vector<float> logits;
  // Position 2 is beyond the allocated 2 tokens.
  Status st = model.CachedStep(0, 2, *assigner.Find(1), &storage, &logits);
  EXPECT_TRUE(st.IsFailedPrecondition());
}

TEST(TransformerTest, DeterministicAcrossIdenticalSeeds) {
  const ModelConfig cfg = ModelConfig::Tiny();
  TransformerModel m1(ModelWeights::Random(cfg, 77));
  TransformerModel m2(ModelWeights::Random(cfg, 77));
  const auto tokens = MakeTokens(10, 4, cfg.vocab_size);
  auto l1 = m1.ForwardFull(tokens);
  auto l2 = m2.ForwardFull(tokens);
  ASSERT_TRUE(l1.ok() && l2.ok());
  EXPECT_EQ(*l1, *l2);
}

}  // namespace
}  // namespace aptserve
