// Unit tests for the prefix-sharing radix index: block-granular matching,
// the usable cap and its copy-on-write boundary, LRU eviction respecting
// pool refcounts, idempotent insertion, and the stats/DebugString surface.
#include "prefix/prefix_index.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace aptserve {
namespace {

constexpr int32_t kBlock = 4;

std::vector<int32_t> Tokens(int32_t n, int32_t base = 100) {
  std::vector<int32_t> t(n);
  std::iota(t.begin(), t.end(), base);
  return t;
}

/// Allocates `n` K/V block pairs from `pool`.
void AllocPairs(BlockPool* pool, int32_t n, std::vector<BlockId>* k,
                std::vector<BlockId>* v) {
  for (int32_t i = 0; i < n; ++i) {
    auto kb = pool->Allocate();
    auto vb = pool->Allocate();
    ASSERT_TRUE(kb.ok() && vb.ok());
    k->push_back(*kb);
    v->push_back(*vb);
  }
}

TEST(PrefixIndexTest, EmptyIndexMisses) {
  BlockPool pool(16, kBlock);
  PrefixIndex index(&pool, kBlock);
  PrefixMatch m = index.Match(Tokens(12), 12);
  EXPECT_FALSE(m.hit());
  EXPECT_EQ(index.stats().lookups, 1);
  EXPECT_EQ(index.stats().hits, 0);
}

TEST(PrefixIndexTest, InsertThenMatchReturnsBlocksAndRefs) {
  BlockPool pool(16, kBlock);
  PrefixIndex index(&pool, kBlock);
  std::vector<BlockId> k, v;
  AllocPairs(&pool, 3, &k, &v);
  const auto tokens = Tokens(12);
  EXPECT_EQ(index.Insert(tokens, 12, k, v), 3);
  EXPECT_EQ(index.num_nodes(), 3);
  // The index took one reference per indexed block.
  for (BlockId b : k) EXPECT_EQ(pool.RefCount(b), 2);
  for (BlockId b : v) EXPECT_EQ(pool.RefCount(b), 2);

  PrefixMatch m = index.Match(tokens, 12);
  ASSERT_TRUE(m.hit());
  EXPECT_EQ(m.tokens, 12);
  EXPECT_EQ(m.k_blocks, k);
  EXPECT_EQ(m.v_blocks, v);
  EXPECT_EQ(m.cow_tokens, 0);
  // Match is a pure lookup: refcounts unchanged.
  for (BlockId b : k) EXPECT_EQ(pool.RefCount(b), 2);
}

TEST(PrefixIndexTest, MatchIsBlockGranularAndPrefixOnly) {
  BlockPool pool(16, kBlock);
  PrefixIndex index(&pool, kBlock);
  std::vector<BlockId> k, v;
  AllocPairs(&pool, 2, &k, &v);
  const auto tokens = Tokens(10);  // only 2 full blocks indexable
  EXPECT_EQ(index.Insert(tokens, 10, k, v), 2);

  // A query diverging inside the second block matches only the first.
  auto diverging = tokens;
  diverging[5] = 9999;
  PrefixMatch m = index.Match(diverging, 10);
  ASSERT_TRUE(m.hit());
  EXPECT_EQ(m.tokens, kBlock);
  ASSERT_EQ(m.k_blocks.size(), 1u);
  EXPECT_EQ(m.k_blocks[0], k[0]);

  // A query diverging at position 0 misses entirely.
  auto miss = tokens;
  miss[0] = 9999;
  EXPECT_FALSE(index.Match(miss, 10).hit());
}

TEST(PrefixIndexTest, UsableCapMidBlockBecomesCow) {
  BlockPool pool(16, kBlock);
  PrefixIndex index(&pool, kBlock);
  std::vector<BlockId> k, v;
  AllocPairs(&pool, 2, &k, &v);
  const auto tokens = Tokens(8);
  EXPECT_EQ(index.Insert(tokens, 8, k, v), 2);

  // Cap at 7: one full block plus 3 COW slots of the second.
  PrefixMatch m = index.Match(tokens, 7);
  ASSERT_TRUE(m.hit());
  EXPECT_EQ(m.tokens, 7);
  ASSERT_EQ(m.k_blocks.size(), 1u);
  EXPECT_EQ(m.k_blocks[0], k[0]);
  EXPECT_EQ(m.cow_src_k, k[1]);
  EXPECT_EQ(m.cow_src_v, v[1]);
  EXPECT_EQ(m.cow_tokens, 3);
  // Adoption counters only advance once a caller confirms the seeding.
  EXPECT_EQ(index.stats().cow_matches, 0);
  index.RecordAdoption(m);
  EXPECT_EQ(index.stats().cow_matches, 1);
  EXPECT_EQ(index.stats().matched_tokens, 7);

  // Cap below one block: pure COW of the first block.
  m = index.Match(tokens, 2);
  ASSERT_TRUE(m.hit());
  EXPECT_EQ(m.tokens, 2);
  EXPECT_TRUE(m.k_blocks.empty());
  EXPECT_EQ(m.cow_src_k, k[0]);
  EXPECT_EQ(m.cow_tokens, 2);

  EXPECT_FALSE(index.Match(tokens, 0).hit());
}

TEST(PrefixIndexTest, InsertIsIdempotentFirstWriterWins) {
  BlockPool pool(16, kBlock);
  PrefixIndex index(&pool, kBlock);
  std::vector<BlockId> k1, v1, k2, v2;
  AllocPairs(&pool, 2, &k1, &v1);
  AllocPairs(&pool, 2, &k2, &v2);
  const auto tokens = Tokens(8);
  EXPECT_EQ(index.Insert(tokens, 8, k1, v1), 2);
  // Re-inserting the same content with different blocks adds nothing.
  EXPECT_EQ(index.Insert(tokens, 8, k2, v2), 0);
  EXPECT_EQ(index.num_nodes(), 2);
  PrefixMatch m = index.Match(tokens, 8);
  EXPECT_EQ(m.k_blocks, k1);  // first writer's blocks survive
  EXPECT_EQ(pool.RefCount(k2[0]), 1);  // second writer's untouched
}

TEST(PrefixIndexTest, LruEvictionFreesOldestUnreferencedLeafFirst) {
  BlockPool pool(16, kBlock);
  PrefixIndex index(&pool, kBlock);
  std::vector<BlockId> ka, va, kb, vb;
  AllocPairs(&pool, 1, &ka, &va);
  AllocPairs(&pool, 1, &kb, &vb);
  index.Insert(Tokens(kBlock, 100), kBlock, ka, va);
  index.Insert(Tokens(kBlock, 200), kBlock, kb, vb);
  // The caller's own references still pin everything.
  EXPECT_EQ(index.EvictLru(2), 0);
  // Drop caller references: blocks now belong to the index alone.
  pool.FreeMany({ka[0], va[0], kb[0], vb[0]});
  // Touch prefix A so B becomes the LRU victim.
  EXPECT_TRUE(index.Match(Tokens(kBlock, 100), kBlock).hit());
  EXPECT_EQ(index.EvictLru(2), 2);
  EXPECT_EQ(index.num_nodes(), 1);
  EXPECT_FALSE(pool.IsAllocated(kb[0]));
  EXPECT_FALSE(pool.IsAllocated(vb[0]));
  EXPECT_TRUE(index.Match(Tokens(kBlock, 100), kBlock).hit());
  EXPECT_FALSE(index.Match(Tokens(kBlock, 200), kBlock).hit());
  EXPECT_EQ(index.stats().evicted_blocks, 2);
}

TEST(PrefixIndexTest, EvictionPeelsTreesBottomUp) {
  BlockPool pool(32, kBlock);
  PrefixIndex index(&pool, kBlock);
  std::vector<BlockId> k, v;
  AllocPairs(&pool, 3, &k, &v);
  const auto tokens = Tokens(12);
  index.Insert(tokens, 12, k, v);
  pool.FreeMany({k[0], v[0], k[1], v[1], k[2], v[2]});
  // Asking for everything drains the chain leaf-first.
  EXPECT_EQ(index.EvictLru(6), 6);
  EXPECT_EQ(index.num_nodes(), 0);
  EXPECT_EQ(pool.num_allocated(), 0);
}

TEST(PrefixIndexTest, ClearReleasesEverything) {
  BlockPool pool(16, kBlock);
  {
    PrefixIndex index(&pool, kBlock);
    std::vector<BlockId> k, v;
    AllocPairs(&pool, 2, &k, &v);
    index.Insert(Tokens(8), 8, k, v);
    pool.FreeMany({k[0], v[0], k[1], v[1]});
    EXPECT_EQ(pool.num_allocated(), 4);  // index references
    index.Clear();
    EXPECT_EQ(pool.num_allocated(), 0);
    EXPECT_EQ(index.num_nodes(), 0);
  }
  // Destructor path: a fresh index destroyed while holding blocks.
  {
    PrefixIndex index(&pool, kBlock);
    std::vector<BlockId> k, v;
    AllocPairs(&pool, 1, &k, &v);
    index.Insert(Tokens(kBlock), kBlock, k, v);
    pool.FreeMany({k[0], v[0]});
  }
  EXPECT_EQ(pool.num_allocated(), 0);
}

TEST(PrefixIndexTest, StatsAndDebugString) {
  BlockPool pool(16, kBlock);
  PrefixIndex index(&pool, kBlock);
  std::vector<BlockId> k, v;
  AllocPairs(&pool, 2, &k, &v);
  index.Insert(Tokens(8), 8, k, v);
  index.RecordAdoption(index.Match(Tokens(8), 8));
  index.RecordAdoption(index.Match(Tokens(8, 999), 8));  // miss: no-op
  const PrefixStats& s = index.stats();
  EXPECT_EQ(s.lookups, 2);
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.matched_tokens, 8);
  EXPECT_EQ(s.shared_blocks, 2);
  EXPECT_EQ(s.inserted_blocks, 4);
  const std::string dump = index.DebugString();
  EXPECT_NE(dump.find("nodes=2"), std::string::npos);
  EXPECT_NE(dump.find("hits=1"), std::string::npos);
  EXPECT_NE(dump.find("BlockPool{"), std::string::npos);
}

}  // namespace
}  // namespace aptserve
