// Parity pin for the ServingLoop/ExecutionBackend refactor: the
// CostModelBackend loop must reproduce the pre-refactor Simulator
// bit-for-bit. `LegacySimulatorRun` below is a faithful port of the
// original monolithic Simulator::Run (the loop as it existed before the
// serve/ layer); every run compares its SloReport — every scalar and every
// latency sample — exactly, across schedulers, load levels and both
// preemption modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "backend_diff_util.h"
#include "common/rng.h"
#include "workload/shared_prefix.h"
#include "baselines/fastgen_scheduler.h"
#include "baselines/fcfs_scheduler.h"
#include "baselines/sarathi_scheduler.h"
#include "cache/block_pool.h"
#include "cache/hybrid_assigner.h"
#include "cache/swap_space.h"
#include "common/logging.h"
#include "core/apt_sarathi_scheduler.h"
#include "core/apt_scheduler.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace aptserve {
namespace {

// ---------------------------------------------------------------------------
// The pre-refactor iteration loop, verbatim (modulo the struct name).
// ---------------------------------------------------------------------------

struct LegacyResult {
  SloReport report;
  int64_t prefill_iterations = 0;
  int64_t decode_iterations = 0;
  int64_t mixed_iterations = 0;
  int32_t pool_blocks = 0;
  int32_t peak_blocks = 0;
  int64_t swap_outs = 0;
  int64_t swap_ins = 0;
  std::unordered_map<RequestId, RequestRecord> records;
};

StatusOr<LegacyResult> LegacySimulatorRun(const CostModel& cost_model,
                                          const SimulatorConfig& config,
                                          const std::vector<Request>& trace,
                                          Scheduler* scheduler,
                                          const SloSpec& slo) {
  APT_CHECK(scheduler != nullptr);
  int32_t pool_blocks = 0;
  if (config.pool_blocks_override > 0) {
    pool_blocks = config.pool_blocks_override;
  } else {
    APT_ASSIGN_OR_RETURN(double cache_bytes, cost_model.cluster().CacheBytes(
                                                 cost_model.model()));
    const double bb =
        config.block_size * cost_model.model().HiddenBytesPerToken();
    pool_blocks = static_cast<int32_t>(cache_bytes / bb);
    if (pool_blocks <= 0) {
      return Status::InvalidArgument("no cache memory available");
    }
  }
  BlockPool pool(pool_blocks, config.block_size);
  HybridCacheAssigner assigner(&pool);
  MetricsCollector metrics;
  const bool swap_mode = config.preemption_mode == PreemptionMode::kSwap;
  SwapSpace swap(config.swap_blocks > 0 ? config.swap_blocks
                                        : 4 * pool_blocks);
  const double block_bytes =
      config.block_size * cost_model.model().HiddenBytesPerToken();
  double carry_swap_bytes = 0.0;

  std::vector<SimRequest> reqs;
  reqs.reserve(trace.size());
  for (const Request& r : trace) {
    SimRequest sr;
    sr.spec = r;
    if (r.prompt_len <= 0 || r.output_len <= 0) {
      return Status::InvalidArgument("request lengths must be positive");
    }
    reqs.push_back(sr);
    metrics.RegisterRequest(r);
  }
  std::sort(reqs.begin(), reqs.end(),
            [](const SimRequest& a, const SimRequest& b) {
              return a.spec.arrival < b.spec.arrival;
            });
  for (const SimRequest& sr : reqs) {
    const int32_t need =
        assigner.BlocksNeeded(CacheType::kHidden, sr.spec.total_len());
    if (need > pool_blocks) {
      return Status::InvalidArgument(
          "request " + std::to_string(sr.spec.id) +
          " cannot fit in the cache pool even with hidden cache");
    }
  }
  std::unordered_map<RequestId, size_t> index;
  for (size_t i = 0; i < reqs.size(); ++i) index[reqs[i].spec.id] = i;

  LegacyResult result;
  result.pool_blocks = pool_blocks;

  TimePoint now = 0.0;
  size_t next_arrival = 0;
  size_t finished = 0;
  int32_t consecutive_idle = 0;

  for (int64_t iter = 0; iter < config.max_iterations; ++iter) {
    if (finished == reqs.size()) break;
    while (next_arrival < reqs.size() &&
           reqs[next_arrival].spec.arrival <= now) {
      ++next_arrival;
    }

    SchedulerInput input;
    input.now = now;
    input.pool = &pool;
    input.assigner = &assigner;
    input.cost_model = &cost_model;
    for (size_t i = 0; i < next_arrival; ++i) {
      SimRequest& sr = reqs[i];
      if (sr.phase == RequestPhase::kWaiting) {
        input.waiting.push_back(&sr);
      } else if (sr.phase == RequestPhase::kRunning) {
        input.running.push_back(&sr);
      }
    }
    if (input.waiting.empty() && input.running.empty()) {
      if (next_arrival < reqs.size()) {
        now = std::max(now, reqs[next_arrival].spec.arrival);
        continue;
      }
      break;
    }

    BatchPlan plan = scheduler->PlanIteration(input);

    for (const PreemptionItem& p : plan.preempt) {
      auto it = index.find(p.id);
      if (it == index.end()) {
        return Status::Internal("scheduler preempted unknown request");
      }
      SimRequest& sr = reqs[it->second];
      const bool preemptible =
          assigner.Has(p.id) && (sr.phase == RequestPhase::kRunning ||
                                 sr.phase == RequestPhase::kWaiting);
      if (!preemptible) {
        return Status::Internal(
            "scheduler preempted a request holding no cache");
      }
      const bool is_conversion = p.resume_cache_type != sr.cache_type;
      if (is_conversion) {
        APT_RETURN_NOT_OK(assigner.DiscardForConversion(p.id));
        ++sr.conversions;
        metrics.OnConversion();
      } else if (swap_mode && sr.phase == RequestPhase::kRunning &&
                 swap.SwapOut(p.id, sr.cache_type, sr.cached_tokens,
                              assigner.Find(p.id)->TotalBlocks())
                     .ok()) {
        carry_swap_bytes +=
            assigner.Find(p.id)->TotalBlocks() * block_bytes;
        APT_RETURN_NOT_OK(assigner.Release(p.id));
        metrics.OnPreemption();
        ++sr.preemptions;
        sr.phase = RequestPhase::kWaiting;
        sr.swapped = true;
        sr.prefill_progress = sr.cached_tokens;
        continue;
      } else {
        APT_RETURN_NOT_OK(assigner.Release(p.id));
        metrics.OnPreemption();
      }
      ++sr.preemptions;
      sr.phase = RequestPhase::kWaiting;
      sr.cache_type = p.resume_cache_type;
      sr.cached_tokens = 0;
      sr.prefill_progress = 0;
    }

    struct Applied {
      SimRequest* req;
      int32_t chunk;  // 0 => decode, -1 => swap-in (no token)
      int32_t prior_progress;
    };
    std::vector<Applied> applied;
    bool hit_memory_wall = false;
    double iter_swap_bytes = 0.0;
    int32_t accepted = 0;
    for (const ScheduledItem& item : plan.items) {
      if (accepted >= config.max_batch_size) break;
      auto it = index.find(item.id);
      if (it == index.end()) {
        return Status::Internal("scheduler scheduled unknown request");
      }
      SimRequest& sr = reqs[it->second];
      if (sr.phase == RequestPhase::kFinished) {
        return Status::Internal("scheduler scheduled a finished request");
      }
      if (item.prefill_chunk == 0) {
        if (sr.phase != RequestPhase::kRunning || sr.cached_tokens < 1) {
          return Status::Internal("decode scheduled for non-running request");
        }
        if (item.cache_type != sr.cache_type) {
          return Status::Internal(
              "decode cache type mismatch; use preemption to convert");
        }
        Status st = assigner.Append(item.id, 1);
        if (st.IsOutOfMemory()) {
          APT_RETURN_NOT_OK(assigner.Release(item.id));
          metrics.OnPreemption();
          ++sr.preemptions;
          sr.phase = RequestPhase::kWaiting;
          sr.cached_tokens = 0;
          sr.prefill_progress = 0;
          hit_memory_wall = true;
          continue;
        }
        APT_RETURN_NOT_OK(st);
        applied.push_back({&sr, 0, 0});
        ++accepted;
      } else {
        if (sr.phase != RequestPhase::kWaiting) {
          return Status::Internal("prefill scheduled for running request");
        }
        if (sr.swapped) {
          const SwapSpace::Entry* entry = swap.Find(item.id);
          APT_CHECK(entry != nullptr);
          const int32_t need =
              assigner.BlocksNeeded(entry->type, entry->tokens);
          if (need > pool.num_free()) {
            hit_memory_wall = true;
            continue;
          }
          APT_ASSIGN_OR_RETURN(SwapSpace::Entry e, swap.SwapIn(item.id));
          APT_RETURN_NOT_OK(
              assigner.CreateFilled(item.id, e.type, e.tokens));
          iter_swap_bytes +=
              assigner.Find(item.id)->TotalBlocks() * block_bytes;
          sr.swapped = false;
          sr.phase = RequestPhase::kRunning;
          applied.push_back({&sr, -1, 0});
          ++accepted;
          continue;
        }
        const int32_t remaining = sr.PrefillTarget() - sr.prefill_progress;
        const int32_t chunk = std::min(item.prefill_chunk, remaining);
        if (chunk <= 0) {
          return Status::Internal("empty prefill chunk scheduled");
        }
        Status st;
        if (!assigner.Has(item.id)) {
          if (sr.has_first_token && sr.cache_type != item.cache_type) {
            metrics.OnConversion();
            ++sr.conversions;
          }
          sr.cache_type = item.cache_type;
          st = assigner.CreateFilled(item.id, item.cache_type, chunk);
        } else {
          if (item.cache_type != sr.cache_type) {
            return Status::Internal(
                "chunked prefill cannot switch cache type mid-pass");
          }
          st = assigner.Append(item.id, chunk);
        }
        if (st.IsOutOfMemory()) {
          hit_memory_wall = true;
          continue;
        }
        APT_RETURN_NOT_OK(st);
        applied.push_back({&sr, chunk, sr.prefill_progress});
        ++accepted;
      }
    }

    if (applied.empty()) {
      ++consecutive_idle;
      if (consecutive_idle > 1000) {
        return Status::Internal("scheduler made no progress for 1000 "
                                "iterations with requests pending");
      }
      if (next_arrival < reqs.size()) {
        now = std::max(now + cost_model.overhead(),
                       reqs[next_arrival].spec.arrival);
      } else {
        now += cost_model.overhead();
      }
      continue;
    }
    consecutive_idle = 0;

    BatchWorkload w;
    w.swap_bytes = carry_swap_bytes + iter_swap_bytes;
    carry_swap_bytes = 0.0;
    for (const Applied& a : applied) {
      if (a.chunk < 0) continue;
      if (a.chunk == 0) {
        ++w.decode_reqs;
        const int64_t ctx = a.req->cached_tokens;
        if (a.req->cache_type == CacheType::kHidden) {
          w.decode_hidden_context_tokens += ctx;
        } else {
          w.decode_kv_context_tokens += ctx;
        }
      } else {
        w.prefill_tokens += a.chunk;
        const int64_t k = a.prior_progress;
        const int64_t c = a.chunk;
        w.prefill_attend_tokens += c * k + c * (c + 1) / 2;
      }
    }
    const double latency = cost_model.IterationSeconds(w);
    const bool is_prefill_iter = w.prefill_tokens > 0 && w.decode_reqs == 0;
    const bool is_decode_iter = w.prefill_tokens == 0 && w.decode_reqs > 0;
    if (is_prefill_iter) {
      ++result.prefill_iterations;
    } else if (is_decode_iter) {
      ++result.decode_iterations;
    } else {
      ++result.mixed_iterations;
    }
    now += latency;

    for (const Applied& a : applied) {
      SimRequest& sr = *a.req;
      if (a.chunk < 0) continue;
      if (a.chunk == 0) {
        sr.cached_tokens += 1;
        ++sr.generated;
        metrics.OnToken(sr.spec.id, now);
        sr.last_token_time = now;
      } else {
        sr.prefill_progress += a.chunk;
        sr.cached_tokens += a.chunk;
        if (sr.prefill_progress < sr.PrefillTarget()) continue;
        sr.phase = RequestPhase::kRunning;
        ++sr.generated;
        metrics.OnToken(sr.spec.id, now);
        sr.has_first_token = true;
        sr.last_token_time = now;
      }
      if (sr.IsFinished()) {
        sr.phase = RequestPhase::kFinished;
        metrics.OnFinish(sr.spec.id, now);
        APT_RETURN_NOT_OK(assigner.Release(sr.spec.id));
        ++finished;
      }
    }

    bool at_limit = hit_memory_wall;
    if (!at_limit) {
      for (size_t i = 0; i < next_arrival && !at_limit; ++i) {
        const SimRequest& sr = reqs[i];
        if (sr.phase != RequestPhase::kWaiting) continue;
        bool scheduled_now = false;
        for (const Applied& a : applied) {
          if (a.req == &sr) {
            scheduled_now = true;
            break;
          }
        }
        if (!scheduled_now &&
            assigner.BlocksNeeded(CacheType::kKV, sr.PrefillTarget()) >
                pool.num_free()) {
          at_limit = true;
        }
      }
    }
    metrics.OnIteration(latency, static_cast<int32_t>(applied.size()),
                        at_limit);
    result.peak_blocks = std::max(result.peak_blocks, pool.peak_allocated());
  }

  if (finished != reqs.size()) {
    return Status::Internal("simulation hit the iteration cap");
  }
  result.swap_outs = swap.total_swap_outs();
  result.swap_ins = swap.total_swap_ins();
  result.report = metrics.Report(slo);
  result.records = metrics.records();
  return result;
}

// ---------------------------------------------------------------------------
// Comparison harness.
// ---------------------------------------------------------------------------

CostModel MakeCostModel() {
  const ModelSpec model = ModelSpec::Opt13B();
  return CostModel(model, ClusterSpec::ForModel(model));
}

std::vector<Request> MakeTrace(double rate, int32_t n, uint64_t seed = 3) {
  TraceConfig cfg;
  cfg.profile = DatasetProfile::ShareGpt();
  cfg.num_requests = n;
  cfg.rate_per_sec = rate;
  cfg.seed = seed;
  auto trace = BuildTrace(cfg);
  EXPECT_TRUE(trace.ok()) << trace.status().ToString();
  return *trace;
}

std::unique_ptr<Scheduler> MakeNamedScheduler(const std::string& kind,
                                              const SloSpec& slo) {
  if (kind == "fcfs") return std::make_unique<FcfsScheduler>();
  if (kind == "sarathi") return std::make_unique<SarathiScheduler>();
  if (kind == "fastgen") return std::make_unique<FastGenScheduler>();
  if (kind == "apt") {
    AptConfig c;
    c.slo = slo;
    return std::make_unique<AptScheduler>(c);
  }
  AptSarathiConfig c;
  c.slo = slo;
  return std::make_unique<AptSarathiScheduler>(c);
}

/// Exact (bit-for-bit) equality across the whole report, including the raw
/// latency sample sets behind the percentiles.
void ExpectReportsIdentical(const SloReport& legacy, const SloReport& now) {
  EXPECT_EQ(legacy.slo_attainment, now.slo_attainment);
  EXPECT_EQ(legacy.ttft_attainment, now.ttft_attainment);
  EXPECT_EQ(legacy.tbt_attainment, now.tbt_attainment);
  EXPECT_EQ(legacy.batch_limit_time_ratio, now.batch_limit_time_ratio);
  EXPECT_EQ(legacy.total_serving_time, now.total_serving_time);
  EXPECT_EQ(legacy.iterations, now.iterations);
  EXPECT_EQ(legacy.mean_batch_size, now.mean_batch_size);
  EXPECT_EQ(legacy.preemptions, now.preemptions);
  EXPECT_EQ(legacy.conversions, now.conversions);
  EXPECT_EQ(legacy.mean_ttft, now.mean_ttft);
  EXPECT_EQ(legacy.p99_ttft, now.p99_ttft);
  EXPECT_EQ(legacy.jain_fairness_ttft, now.jain_fairness_ttft);
  ASSERT_EQ(legacy.ttfts.count(), now.ttfts.count());
  EXPECT_EQ(legacy.ttfts.samples(), now.ttfts.samples());
  ASSERT_EQ(legacy.p99_tbts.count(), now.p99_tbts.count());
  EXPECT_EQ(legacy.p99_tbts.samples(), now.p99_tbts.samples());
}

void RunParity(const std::string& scheduler_kind, const SimulatorConfig& cfg,
               double rate, int32_t n, uint64_t seed = 3) {
  const SloSpec slo{1.0, 1.0};
  const CostModel cm = MakeCostModel();
  const auto trace = MakeTrace(rate, n, seed);

  auto legacy_sched = MakeNamedScheduler(scheduler_kind, slo);
  auto legacy =
      LegacySimulatorRun(cm, cfg, trace, legacy_sched.get(), slo);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();

  auto new_sched = MakeNamedScheduler(scheduler_kind, slo);
  Simulator sim(cm, cfg);
  auto current = sim.Run(trace, new_sched.get(), slo);
  ASSERT_TRUE(current.ok()) << current.status().ToString();

  ExpectReportsIdentical(legacy->report, current->report);
  EXPECT_EQ(legacy->prefill_iterations, current->prefill_iterations);
  EXPECT_EQ(legacy->decode_iterations, current->decode_iterations);
  EXPECT_EQ(legacy->mixed_iterations, current->mixed_iterations);
  EXPECT_EQ(legacy->pool_blocks, current->pool_blocks);
  EXPECT_EQ(legacy->peak_blocks, current->peak_blocks);
  EXPECT_EQ(legacy->swap_outs, current->swap_outs);
  EXPECT_EQ(legacy->swap_ins, current->swap_ins);
  // Per-request records match exactly too.
  ASSERT_EQ(legacy->records.size(), current->records.size());
  for (const auto& [id, rec] : legacy->records) {
    auto it = current->records.find(id);
    ASSERT_NE(it, current->records.end());
    EXPECT_EQ(rec.ttft, it->second.ttft);
    EXPECT_EQ(rec.finish_time, it->second.finish_time);
    EXPECT_EQ(rec.tbt_samples, it->second.tbt_samples);
  }
}

class ParityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ParityTest, LightLoad) {
  RunParity(GetParam(), SimulatorConfig{}, 0.5, 60);
}

TEST_P(ParityTest, HeavyLoad) {
  RunParity(GetParam(), SimulatorConfig{}, 20.0, 120);
}

TEST_P(ParityTest, MemoryPressureRecompute) {
  SimulatorConfig cfg;
  cfg.pool_blocks_override = 220;
  RunParity(GetParam(), cfg, 8.0, 80);
}

TEST_P(ParityTest, MemoryPressureSwap) {
  SimulatorConfig cfg;
  cfg.pool_blocks_override = 220;
  cfg.preemption_mode = PreemptionMode::kSwap;
  RunParity(GetParam(), cfg, 8.0, 80);
}

TEST_P(ParityTest, MemoryPressureSwapTinySwapSpace) {
  // A nearly-full swap space exercises the full-swap-space -> recompute
  // fallback in both implementations.
  SimulatorConfig cfg;
  cfg.pool_blocks_override = 220;
  cfg.preemption_mode = PreemptionMode::kSwap;
  cfg.swap_blocks = 32;
  RunParity(GetParam(), cfg, 8.0, 80, 11);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, ParityTest,
                         ::testing::Values("fcfs", "sarathi", "fastgen",
                                           "apt", "apt_s"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Cross-backend parity (the differential harness): beyond reproducing the
// legacy loop, the two ExecutionBackends must agree with *each other* on
// everything structural — completion order, prefill accounting, prefix
// stats — even though one prices iterations analytically and the other
// measures a (virtual) engine.
// ---------------------------------------------------------------------------

TEST(CrossBackendParityTest, SpacedTraceAgreesWithoutSharing) {
  // Arrivals spaced far beyond both backends' iteration latencies: the
  // request-level schedule is latency-independent, so completion order and
  // token accounting must match exactly.
  std::vector<Request> trace;
  Rng rng(17);
  for (int32_t i = 0; i < 12; ++i) {
    Request r;
    r.id = i;
    r.prompt_len = static_cast<int32_t>(rng.UniformInt(4, 24));
    r.output_len = static_cast<int32_t>(rng.UniformInt(2, 10));
    r.arrival = 2.0 * i;
    trace.push_back(r);
  }
  testing_util::DiffOptions opts;
  opts.enable_prefix_sharing = false;
  auto diff = testing_util::RunBackendDiff(trace, opts);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  testing_util::ExpectBackendAgreement(*diff);
  EXPECT_EQ(diff->cost.result.prefill_tokens_skipped, 0);
  EXPECT_EQ(diff->engine.result.prefill_tokens_skipped, 0);
}

TEST(CrossBackendParityTest, SharedPrefixTraceAgreesWithSharing) {
  SharedPrefixConfig cfg;
  cfg.system_prompt_len = 12;
  cfg.num_conversations = 4;
  cfg.turns_per_conversation = 2;
  cfg.tokens_per_turn = 8;
  cfg.output_len_mean = 3;
  cfg.vocab_size = ModelConfig::Tiny().vocab_size;
  cfg.think_time_s = 3.0;
  cfg.conversation_stagger_s = 0.5;
  auto trace = BuildSharedPrefixTrace(cfg);
  ASSERT_TRUE(trace.ok());

  testing_util::DiffOptions opts;
  auto diff = testing_util::RunBackendDiff(*trace, opts);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  testing_util::ExpectBackendAgreement(*diff);
  EXPECT_GT(diff->cost.result.prefix.hits, 0);
}

}  // namespace
}  // namespace aptserve
