// End-to-end tests of ServingEngine: real transformer compute driven by
// each scheduler, with real hybrid-cache memory management.
#include "engine/serving_engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/fcfs_scheduler.h"
#include "baselines/sarathi_scheduler.h"
#include "core/apt_scheduler.h"
#include "workload/arrival.h"

namespace aptserve {
namespace {

std::vector<Request> TinyTrace(int32_t n, double rate, uint64_t seed = 4) {
  Rng rng(seed);
  auto arrivals = PoissonArrivals(rate, n, &rng);
  EXPECT_TRUE(arrivals.ok());
  std::vector<Request> trace;
  for (int32_t i = 0; i < n; ++i) {
    Request r;
    r.id = i;
    r.prompt_len = static_cast<int32_t>(rng.UniformInt(4, 24));
    r.output_len = static_cast<int32_t>(rng.UniformInt(2, 12));
    r.arrival = (*arrivals)[i];
    trace.push_back(r);
  }
  return trace;
}

ServingEngineConfig Cfg() {
  ServingEngineConfig cfg;
  cfg.model = ModelConfig::Tiny();
  cfg.num_blocks = 96;
  cfg.block_size = 8;
  cfg.slo = SloSpec{5.0, 5.0};
  cfg.calibrate_rho = false;  // keep unit tests fast
  return cfg;
}

class ServingEngineSchedulerTest
    : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Scheduler> Make(const SloSpec& slo) {
    const std::string& kind = GetParam();
    if (kind == "fcfs") return std::make_unique<FcfsScheduler>();
    if (kind == "sarathi") {
      SarathiConfig c;
      c.token_budget = 64;
      c.chunk_size = 16;
      return std::make_unique<SarathiScheduler>(c);
    }
    AptConfig c;
    c.slo = slo;
    c.max_prefill_tokens = 128;
    return std::make_unique<AptScheduler>(c);
  }
};

TEST_P(ServingEngineSchedulerTest, ServesTraceToCompletion) {
  ServingEngineConfig cfg = Cfg();
  ServingEngine serving(cfg);
  auto sched = Make(cfg.slo);
  auto trace = TinyTrace(24, 1000.0);  // effectively all-at-once
  auto result = serving.Serve(trace, sched.get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->report.ttfts.count(), 24u);
  EXPECT_GT(result->tokens_generated, 0);
  EXPECT_GT(result->compute_seconds, 0.0);
  // Pool fully drained at the end.
  EXPECT_EQ(serving.engine().pool().num_allocated(), 0);
}

TEST_P(ServingEngineSchedulerTest, MemoryPressureStillCompletes) {
  ServingEngineConfig cfg = Cfg();
  cfg.num_blocks = 24;  // tight: forces preemption / hidden usage
  ServingEngine serving(cfg);
  auto sched = Make(cfg.slo);
  auto trace = TinyTrace(16, 1000.0, 9);
  auto result = serving.Serve(trace, sched.get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->report.ttfts.count(), 16u);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, ServingEngineSchedulerTest,
                         ::testing::Values("fcfs", "sarathi", "apt"),
                         [](const auto& info) { return info.param; });

TEST(ServingEngineTest, GeneratedTokenCountsMatchTrace) {
  ServingEngineConfig cfg = Cfg();
  ServingEngine serving(cfg);
  FcfsScheduler sched;
  auto trace = TinyTrace(10, 1000.0, 2);
  int64_t expected_tokens = 0;
  for (const auto& r : trace) expected_tokens += r.output_len;
  auto result = serving.Serve(trace, &sched);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tokens_generated, expected_tokens);
}

TEST(ServingEngineTest, RejectsOversizedRequest) {
  ServingEngineConfig cfg = Cfg();
  ServingEngine serving(cfg);
  FcfsScheduler sched;
  Request r;
  r.id = 0;
  r.prompt_len = cfg.model.max_seq_len;
  r.output_len = 8;
  auto result = serving.Serve({r}, &sched);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(ServingEngineTest, CalibratedRhoIsPositive) {
  ServingEngineConfig cfg = Cfg();
  cfg.calibrate_rho = true;
  ServingEngine serving(cfg);
  AptConfig ac;
  ac.slo = cfg.slo;
  AptScheduler sched(ac);
  auto result = serving.Serve(TinyTrace(6, 1000.0, 5), &sched);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->rho_seconds_per_token, 0.0);
}

}  // namespace
}  // namespace aptserve
