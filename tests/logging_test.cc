// APTSERVE_LOG_LEVEL wiring: the environment applies exactly once, on the
// first GetLogLevel() call, and an explicit SetLogLevel() always wins over
// it — the same first-use contract as APTSERVE_NUM_THREADS
// (runtime/runtime_config.h).
//
// NOTE: the env-application once-flag is process-global, so the tests
// below are order-dependent by design: EnvAppliesOnFirstUse must run
// before anything else in this binary touches GetLogLevel/SetLogLevel.
// gtest runs same-file TESTs in declaration order, and this file is its
// own test binary.
#include "common/logging.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace aptserve {
namespace {

TEST(LoggingTest, EnvAppliesOnFirstUse) {
  ASSERT_EQ(setenv("APTSERVE_LOG_LEVEL", "debug", /*overwrite=*/1), 0);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST(LoggingTest, ExplicitSetWinsOverEnvironment) {
  ASSERT_EQ(setenv("APTSERVE_LOG_LEVEL", "info", /*overwrite=*/1), 0);
  SetLogLevel(LogLevel::kError);
  // The env was consumed on first use above; changing it later must not
  // leak into an explicitly configured process.
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kWarning);  // restore the default for later tests
}

TEST(LoggingTest, ParseNames) {
  LogLevel level = LogLevel::kOff;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
}

TEST(LoggingTest, ParseIsCaseInsensitive) {
  LogLevel level = LogLevel::kOff;
  EXPECT_TRUE(ParseLogLevel("DEBUG", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
}

TEST(LoggingTest, ParseDigits) {
  for (int i = 0; i <= 4; ++i) {
    LogLevel level = LogLevel::kWarning;
    const char digit[2] = {static_cast<char>('0' + i), '\0'};
    EXPECT_TRUE(ParseLogLevel(digit, &level)) << digit;
    EXPECT_EQ(static_cast<int>(level), i);
  }
}

TEST(LoggingTest, ParseRejectsGarbage) {
  LogLevel level = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("5", &level));
  EXPECT_FALSE(ParseLogLevel("-1", &level));
  EXPECT_FALSE(ParseLogLevel(nullptr, &level));
  EXPECT_EQ(level, LogLevel::kError) << "failed parse must not touch *out";
}

}  // namespace
}  // namespace aptserve
