#include "cache/hybrid_assigner.h"

#include <gtest/gtest.h>

namespace aptserve {
namespace {

class HybridAssignerTest : public ::testing::Test {
 protected:
  HybridAssignerTest() : pool_(32, 4), assigner_(&pool_) {}
  BlockPool pool_;
  HybridCacheAssigner assigner_;
};

TEST_F(HybridAssignerTest, BlocksNeededHalvesForHidden) {
  // 10 tokens, block size 4 -> 3 blocks per component.
  EXPECT_EQ(assigner_.BlocksNeeded(CacheType::kKV, 10), 6);
  EXPECT_EQ(assigner_.BlocksNeeded(CacheType::kHidden, 10), 3);
  EXPECT_EQ(assigner_.BlocksNeeded(CacheType::kKV, 0), 0);
  EXPECT_EQ(assigner_.BlocksNeeded(CacheType::kKV, 1), 2);
  EXPECT_EQ(assigner_.BlocksNeeded(CacheType::kHidden, 4), 1);
}

TEST_F(HybridAssignerTest, CreateFilledAllocatesAndTracks) {
  ASSERT_TRUE(assigner_.CreateFilled(1, CacheType::kKV, 10).ok());
  EXPECT_TRUE(assigner_.Has(1));
  const CacheMap* map = assigner_.Find(1);
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->num_tokens(), 10);
  EXPECT_EQ(map->TotalBlocks(), 6);
  EXPECT_EQ(pool_.num_allocated(), 6);
}

TEST_F(HybridAssignerTest, CreateDuplicateRejected) {
  ASSERT_TRUE(assigner_.CreateFilled(1, CacheType::kKV, 4).ok());
  EXPECT_TRUE(
      assigner_.CreateFilled(1, CacheType::kKV, 4).IsAlreadyExists());
}

TEST_F(HybridAssignerTest, CreateZeroTokensRejected) {
  EXPECT_TRUE(
      assigner_.CreateFilled(1, CacheType::kKV, 0).IsInvalidArgument());
}

TEST_F(HybridAssignerTest, AppendGrowsOnBlockBoundary) {
  ASSERT_TRUE(assigner_.CreateFilled(1, CacheType::kKV, 4).ok());
  EXPECT_EQ(pool_.num_allocated(), 2);
  // Tokens 5..8 fit after one more K/V block pair.
  ASSERT_TRUE(assigner_.Append(1, 1).ok());
  EXPECT_EQ(pool_.num_allocated(), 4);
  ASSERT_TRUE(assigner_.Append(1, 3).ok());
  EXPECT_EQ(pool_.num_allocated(), 4);  // still within the same blocks
  EXPECT_EQ(assigner_.Find(1)->num_tokens(), 8);
}

TEST_F(HybridAssignerTest, BlocksToGrow) {
  ASSERT_TRUE(assigner_.CreateFilled(1, CacheType::kKV, 4).ok());
  EXPECT_EQ(assigner_.BlocksToGrow(1, 4), 0);
  EXPECT_EQ(assigner_.BlocksToGrow(1, 5), 2);   // K and V blocks
  EXPECT_EQ(assigner_.BlocksToGrow(1, 9), 4);
  ASSERT_TRUE(assigner_.CreateFilled(2, CacheType::kHidden, 4).ok());
  EXPECT_EQ(assigner_.BlocksToGrow(2, 5), 1);
  // Unknown request: full KV need.
  EXPECT_EQ(assigner_.BlocksToGrow(99, 4), 2);
}

TEST_F(HybridAssignerTest, OutOfMemoryLeavesStateIntact) {
  // Pool of 32 blocks; a KV cache of 60 tokens needs 30 blocks.
  ASSERT_TRUE(assigner_.CreateFilled(1, CacheType::kKV, 60).ok());
  EXPECT_EQ(pool_.num_free(), 2);
  // Another 10-token KV request needs 6 blocks: OOM, nothing changes.
  Status s = assigner_.CreateFilled(2, CacheType::kKV, 10);
  EXPECT_TRUE(s.IsOutOfMemory());
  EXPECT_FALSE(assigner_.Has(2));
  EXPECT_EQ(pool_.num_free(), 2);
  // But a hidden cache of 8 tokens (2 blocks) fits.
  EXPECT_TRUE(assigner_.CreateFilled(2, CacheType::kHidden, 8).ok());
  EXPECT_EQ(pool_.num_free(), 0);
}

TEST_F(HybridAssignerTest, AppendOomKeepsExistingCache) {
  ASSERT_TRUE(assigner_.CreateFilled(1, CacheType::kKV, 60).ok());
  ASSERT_TRUE(assigner_.CreateFilled(2, CacheType::kHidden, 8).ok());
  EXPECT_EQ(pool_.num_free(), 0);
  Status s = assigner_.Append(1, 10);
  EXPECT_TRUE(s.IsOutOfMemory());
  EXPECT_EQ(assigner_.Find(1)->num_tokens(), 60);
}

TEST_F(HybridAssignerTest, ReleaseReturnsBlocks) {
  ASSERT_TRUE(assigner_.CreateFilled(1, CacheType::kKV, 10).ok());
  ASSERT_TRUE(assigner_.Release(1).ok());
  EXPECT_FALSE(assigner_.Has(1));
  EXPECT_EQ(pool_.num_free(), 32);
  EXPECT_TRUE(assigner_.Release(1).IsNotFound());
}

TEST_F(HybridAssignerTest, ConversionReleasesAndCounts) {
  ASSERT_TRUE(assigner_.CreateFilled(1, CacheType::kKV, 10).ok());
  ASSERT_TRUE(assigner_.DiscardForConversion(1).ok());
  EXPECT_EQ(assigner_.num_conversions(), 1);
  EXPECT_EQ(pool_.num_free(), 32);
  // Rebuild as hidden: half the blocks.
  ASSERT_TRUE(assigner_.CreateFilled(1, CacheType::kHidden, 10).ok());
  EXPECT_EQ(assigner_.Find(1)->type(), CacheType::kHidden);
  EXPECT_EQ(pool_.num_allocated(), 3);
}

TEST_F(HybridAssignerTest, AppendUnknownRequest) {
  EXPECT_TRUE(assigner_.Append(5, 1).IsNotFound());
}

TEST_F(HybridAssignerTest, NegativeAppendRejected) {
  ASSERT_TRUE(assigner_.CreateFilled(1, CacheType::kKV, 4).ok());
  EXPECT_TRUE(assigner_.Append(1, -1).IsInvalidArgument());
}

// The unified pool property (paper §4.3): KV and hidden caches interleave
// freely over the same blocks, with no per-type partition.
TEST_F(HybridAssignerTest, UnifiedPoolSharesBlocksAcrossTypes) {
  ASSERT_TRUE(assigner_.CreateFilled(1, CacheType::kKV, 16).ok());     // 8
  ASSERT_TRUE(assigner_.CreateFilled(2, CacheType::kHidden, 32).ok()); // 8
  ASSERT_TRUE(assigner_.CreateFilled(3, CacheType::kKV, 16).ok());     // 8
  ASSERT_TRUE(assigner_.CreateFilled(4, CacheType::kHidden, 32).ok()); // 8
  EXPECT_EQ(pool_.num_free(), 0);
  // Free the two KV requests; the reclaimed blocks serve a hidden request.
  ASSERT_TRUE(assigner_.Release(1).ok());
  ASSERT_TRUE(assigner_.Release(3).ok());
  ASSERT_TRUE(assigner_.CreateFilled(5, CacheType::kHidden, 64).ok());  // 16
  EXPECT_EQ(pool_.num_free(), 0);
}

}  // namespace
}  // namespace aptserve
