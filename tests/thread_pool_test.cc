// ThreadPool stress coverage: empty ranges, nested calls, exception
// propagation and reuse, concurrent top-level submissions, static vs
// dynamic scheduling, and the RuntimeConfig resolution rules.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/runtime_config.h"
#include "runtime/thread_pool.h"

namespace aptserve {
namespace runtime {
namespace {

RuntimeConfig Threads(int32_t n, bool deterministic = true) {
  RuntimeConfig cfg;
  cfg.num_threads = n;
  cfg.deterministic = deterministic;
  return cfg;
}

TEST(RuntimeConfigTest, ResolutionRules) {
  EXPECT_EQ(Threads(1).ResolvedNumThreads(), 1);
  EXPECT_EQ(Threads(4).ResolvedNumThreads(), 4);
  EXPECT_GE(Threads(-1).ResolvedNumThreads(), 1);

  // num_threads == 0 defers to the environment, defaulting to 1.
  unsetenv("APTSERVE_NUM_THREADS");
  EXPECT_EQ(Threads(0).ResolvedNumThreads(), 1);
  setenv("APTSERVE_NUM_THREADS", "3", 1);
  EXPECT_EQ(Threads(0).ResolvedNumThreads(), 3);
  unsetenv("APTSERVE_NUM_THREADS");
}

TEST(ThreadPoolTest, EmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(Threads(4));
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 0, 1, [&](int64_t, int64_t) { ++calls; });
  pool.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  pool.ParallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (bool deterministic : {true, false}) {
    ThreadPool pool(Threads(4, deterministic));
    constexpr int64_t kN = 10'000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelForEach(0, kN, 7, [&](int64_t i) { ++hits[i]; });
    for (int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(Threads(1));
  EXPECT_EQ(pool.num_threads(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(0, 100, 1, [&](int64_t, int64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPoolTest, NestedCallsRunInlineWithoutDeadlock) {
  ThreadPool pool(Threads(4));
  constexpr int64_t kOuter = 16;
  constexpr int64_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelForEach(0, kOuter, 1, [&](int64_t o) {
    // Nested on the same pool: must run inline on this thread.
    const std::thread::id self = std::this_thread::get_id();
    pool.ParallelForEach(0, kInner, 1, [&](int64_t i) {
      EXPECT_EQ(std::this_thread::get_id(), self);
      ++hits[o * kInner + i];
    });
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(Threads(4));
  EXPECT_THROW(
      pool.ParallelForEach(0, 1000, 1,
                           [&](int64_t i) {
                             if (i == 123) throw std::runtime_error("boom");
                           }),
      std::runtime_error);
  // The pool must survive and execute further work fully.
  std::atomic<int64_t> sum{0};
  pool.ParallelForEach(0, 1000, 1, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 1000 * 999 / 2);
}

TEST(ThreadPoolTest, ConcurrentTopLevelSubmissionsSerialize) {
  ThreadPool pool(Threads(4));
  constexpr int kSubmitters = 4;
  constexpr int64_t kN = 2000;
  std::vector<std::atomic<int64_t>> sums(kSubmitters);
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int round = 0; round < 5; ++round) {
        pool.ParallelForEach(0, kN, 3, [&](int64_t i) { sums[s] += i; });
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (int s = 0; s < kSubmitters; ++s) {
    EXPECT_EQ(sums[s].load(), 5 * kN * (kN - 1) / 2);
  }
}

TEST(ThreadPoolTest, ManySmallJobsStress) {
  ThreadPool pool(Threads(4));
  int64_t total = 0;
  for (int round = 0; round < 500; ++round) {
    std::atomic<int64_t> count{0};
    pool.ParallelForEach(0, round % 9, 1, [&](int64_t) { ++count; });
    total += count.load();
  }
  int64_t expected = 0;
  for (int round = 0; round < 500; ++round) expected += round % 9;
  EXPECT_EQ(total, expected);
}

TEST(ThreadPoolTest, FreeFunctionHandlesNullPool) {
  int64_t sum = 0;
  ParallelFor(nullptr, 0, 10, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum, 45);
}

}  // namespace
}  // namespace runtime
}  // namespace aptserve
