#include "baselines/fcfs_scheduler.h"

#include <gtest/gtest.h>

#include "baselines/random_scheduler.h"
#include "tests/scheduler_test_util.h"

namespace aptserve {
namespace {

using testutil::FindItem;
using testutil::HasItem;
using testutil::SchedulerFixture;

TEST(FcfsSchedulerTest, PrefillPrioritizedInArrivalOrder) {
  SchedulerFixture fx;
  fx.AddWaiting(1, 32, 10, 0.0);
  fx.AddWaiting(2, 32, 10, 0.1);
  FcfsScheduler sched;
  auto plan = sched.PlanIteration(fx.Input(1.0));
  ASSERT_EQ(plan.items.size(), 2u);
  EXPECT_EQ(plan.items[0].id, 1);
  EXPECT_EQ(plan.items[1].id, 2);
  EXPECT_EQ(plan.items[0].prefill_chunk, 32);
  EXPECT_EQ(plan.items[0].cache_type, CacheType::kKV);
  EXPECT_TRUE(plan.preempt.empty());
}

TEST(FcfsSchedulerTest, DecodeWhenNoWaiting) {
  SchedulerFixture fx;
  fx.AddRunning(1, 32, 10, 2, CacheType::kKV, 0.5);
  fx.AddRunning(2, 32, 10, 2, CacheType::kKV, 0.5);
  FcfsScheduler sched;
  auto plan = sched.PlanIteration(fx.Input(1.0));
  ASSERT_EQ(plan.items.size(), 2u);
  EXPECT_EQ(plan.items[0].prefill_chunk, 0);
}

TEST(FcfsSchedulerTest, HeadOfLineBlocking) {
  SchedulerFixture fx(/*pool_blocks=*/8, /*block_size=*/16);
  // Head needs 2*ceil(100/16) = 14 blocks > 8; the small request behind it
  // would fit but strict FCFS blocks it.
  fx.AddWaiting(1, 100, 10, 0.0);
  fx.AddWaiting(2, 16, 10, 0.1);
  fx.AddRunning(3, 8, 10, 2, CacheType::kKV, 0.5);
  FcfsScheduler sched;
  auto plan = sched.PlanIteration(fx.Input(1.0));
  // Falls through to a decode iteration.
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_EQ(plan.items[0].id, 3);
  EXPECT_EQ(plan.items[0].prefill_chunk, 0);
}

TEST(FcfsSchedulerTest, RespectsTokenBudget) {
  SchedulerFixture fx(4096, 16);
  FcfsConfig cfg;
  cfg.max_prefill_tokens = 100;
  fx.AddWaiting(1, 80, 10, 0.0);
  fx.AddWaiting(2, 80, 10, 0.1);
  FcfsScheduler sched(cfg);
  auto plan = sched.PlanIteration(fx.Input(1.0));
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_EQ(plan.items[0].id, 1);
}

TEST(FcfsSchedulerTest, OversizedFirstPrefillStillAdmitted) {
  // A single prompt larger than max_prefill_tokens must still be admitted
  // alone (the budget caps batching, not individual prompts).
  SchedulerFixture fx(4096, 16);
  FcfsConfig cfg;
  cfg.max_prefill_tokens = 100;
  fx.AddWaiting(1, 500, 10, 0.0);
  FcfsScheduler sched(cfg);
  auto plan = sched.PlanIteration(fx.Input(1.0));
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_EQ(plan.items[0].prefill_chunk, 500);
}

TEST(FcfsSchedulerTest, HiddenFallbackAdmitsWhenKvDoesNotFit) {
  SchedulerFixture fx(/*pool_blocks=*/8, /*block_size=*/16);
  fx.AddWaiting(1, 100, 10, 0.0);  // KV needs 14 > 8, hidden needs 7 <= 8
  FcfsConfig cfg;
  cfg.allow_hidden_fallback = true;
  FcfsScheduler sched(cfg);
  auto plan = sched.PlanIteration(fx.Input(1.0));
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_EQ(plan.items[0].cache_type, CacheType::kHidden);
}

TEST(FcfsSchedulerTest, MaxBatchCap) {
  SchedulerFixture fx(4096, 16);
  FcfsConfig cfg;
  cfg.max_batch = 3;
  cfg.max_prefill_tokens = 1 << 20;
  for (int i = 0; i < 6; ++i) fx.AddWaiting(i, 8, 4, i * 0.01);
  FcfsScheduler sched(cfg);
  auto plan = sched.PlanIteration(fx.Input(1.0));
  EXPECT_EQ(plan.items.size(), 3u);
}

TEST(FcfsSchedulerTest, EmptyInputYieldsEmptyPlan) {
  SchedulerFixture fx;
  FcfsScheduler sched;
  auto plan = sched.PlanIteration(fx.Input(0.0));
  EXPECT_TRUE(plan.items.empty());
  EXPECT_TRUE(plan.preempt.empty());
}

TEST(RandomSchedulerTest, SkipsNonFittingInsteadOfBlocking) {
  SchedulerFixture fx(/*pool_blocks=*/8, /*block_size=*/16);
  fx.AddWaiting(1, 100, 10, 0.0);  // doesn't fit as KV
  fx.AddWaiting(2, 16, 10, 0.1);   // fits (4 blocks)
  RandomScheduler sched;
  auto plan = sched.PlanIteration(fx.Input(1.0));
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_EQ(plan.items[0].id, 2);
}

TEST(RandomSchedulerTest, OrderVariesAcrossIterations) {
  SchedulerFixture fx(4096, 16);
  for (int i = 0; i < 12; ++i) fx.AddWaiting(i, 8, 4, i * 0.01);
  RandomScheduler sched;
  // Collect first-admitted ids over repeated plans; a shuffling scheduler
  // must produce more than one distinct head.
  std::set<RequestId> heads;
  for (int rep = 0; rep < 20; ++rep) {
    auto plan = sched.PlanIteration(fx.Input(1.0));
    ASSERT_FALSE(plan.items.empty());
    heads.insert(plan.items[0].id);
  }
  EXPECT_GT(heads.size(), 1u);
}

}  // namespace
}  // namespace aptserve
