// PreemptionMode::kSwap regression tests, run against BOTH execution
// backends through the shared ServingLoop: swap round trips, the
// full-swap-space -> recompute fallback, and the type-conversion ->
// discard fallback now behave identically on the analytic simulator and
// the real inference engine (before the serve/ refactor only the
// simulator implemented them).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "engine/serving_engine.h"
#include "sim/simulator.h"

namespace aptserve {
namespace {

CacheType Other(CacheType t) {
  return t == CacheType::kKV ? CacheType::kHidden : CacheType::kKV;
}

/// FCFS-like test scheduler that forces preemptions: every `period`-th
/// planning call it preempts the most recently admitted running request —
/// resuming with the same cache type (swap-eligible) or, with `convert`,
/// the other type (which must bypass the swap and discard instead).
class PreemptingScheduler : public Scheduler {
 public:
  PreemptingScheduler(int32_t period, bool convert)
      : period_(period), convert_(convert) {}

  BatchPlan PlanIteration(const SchedulerInput& input) override {
    BatchPlan plan;
    ++calls_;
    const SimRequest* victim = nullptr;
    if (calls_ % period_ == 0 && !input.running.empty()) {
      victim = input.running.back();
      const CacheType resume =
          convert_ ? Other(victim->cache_type) : victim->cache_type;
      plan.preempt.push_back({victim->spec.id, resume});
    }
    for (const SimRequest* r : input.running) {
      if (r == victim) continue;
      plan.items.push_back({r->spec.id, r->cache_type, 0});
    }
    for (const SimRequest* w : input.waiting) {
      const int32_t remaining = w->PrefillTarget() - w->prefill_progress;
      // Swapped requests have remaining == 1; scheduling them performs the
      // swap-in. Fresh/preempted requests get their full prefill pass.
      plan.items.push_back({w->spec.id, w->cache_type,
                            std::max(remaining, 1)});
    }
    return plan;
  }

  std::string name() const override { return "preempting-test"; }

 private:
  int32_t period_;
  bool convert_;
  int64_t calls_ = 0;
};

std::vector<Request> BurstTrace(int32_t n, int32_t prompt, int32_t output) {
  std::vector<Request> trace;
  for (int32_t i = 0; i < n; ++i) {
    Request r;
    r.id = i;
    r.prompt_len = prompt;
    r.output_len = output;
    r.arrival = 0.0;
    trace.push_back(r);
  }
  return trace;
}

// ---- CostModelBackend (Simulator facade) ----------------------------------

SimulatorConfig SimCfg() {
  SimulatorConfig cfg;
  cfg.pool_blocks_override = 64;
  cfg.preemption_mode = PreemptionMode::kSwap;
  return cfg;
}

CostModel Opt13() {
  const ModelSpec m = ModelSpec::Opt13B();
  return CostModel(m, ClusterSpec::ForModel(m));
}

TEST(SimSwapTest, SwapRoundTripServesTraceToCompletion) {
  PreemptingScheduler sched(/*period=*/5, /*convert=*/false);
  Simulator sim(Opt13(), SimCfg());
  auto r = sim.Run(BurstTrace(3, 100, 40), &sched, SloSpec{10.0, 10.0});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->swap_outs, 0);
  EXPECT_EQ(r->swap_outs, r->swap_ins);  // every swap-out came back
  EXPECT_GT(r->report.preemptions, 0);
  EXPECT_EQ(r->report.conversions, 0);
}

TEST(SimSwapTest, FullSwapSpaceFallsBackToRecompute) {
  SimulatorConfig cfg = SimCfg();
  cfg.swap_blocks = 1;  // nothing fits: every swap attempt must fall back
  PreemptingScheduler sched(5, false);
  Simulator sim(Opt13(), cfg);
  auto r = sim.Run(BurstTrace(3, 100, 40), &sched, SloSpec{10.0, 10.0});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->swap_outs, 0);
  EXPECT_GT(r->report.preemptions, 0);  // recompute preemptions happened
}

TEST(SimSwapTest, ConversionBypassesSwap) {
  PreemptingScheduler sched(5, /*convert=*/true);
  Simulator sim(Opt13(), SimCfg());
  auto r = sim.Run(BurstTrace(3, 100, 40), &sched, SloSpec{10.0, 10.0});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->swap_outs, 0);  // conversions discard, never swap
  EXPECT_GT(r->report.conversions, 0);
}

// ---- InferenceBackend (ServingEngine facade) ------------------------------

ServingEngineConfig EngineCfg() {
  ServingEngineConfig cfg;
  cfg.model = ModelConfig::Tiny();
  cfg.num_blocks = 64;
  cfg.block_size = 4;
  cfg.slo = SloSpec{10.0, 10.0};
  cfg.calibrate_rho = false;
  cfg.virtual_timing = true;  // deterministic timeline
  cfg.preemption_mode = PreemptionMode::kSwap;
  return cfg;
}

TEST(EngineSwapTest, SwapRoundTripServesTraceToCompletion) {
  ServingEngineConfig cfg = EngineCfg();
  ServingEngine serving(cfg);
  PreemptingScheduler sched(/*period=*/3, /*convert=*/false);
  const auto trace = BurstTrace(3, 12, 10);
  auto r = serving.Serve(trace, &sched);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->swap_outs, 0);
  EXPECT_EQ(r->swap_outs, r->swap_ins);
  EXPECT_EQ(r->tokens_generated, 3 * 10);
  EXPECT_EQ(serving.engine().pool().num_allocated(), 0);
}

TEST(EngineSwapTest, SwapAndRecomputeProduceIdenticalTokens) {
  // Swap-in restores the cache bit-identically and recompute rebuilds it
  // from the same tokens, so with greedy sampling the generated sequences
  // must agree between the two preemption modes.
  const auto trace = BurstTrace(3, 12, 10);
  ServingEngineConfig cfg = EngineCfg();
  ServingEngine swap_serving(cfg);
  cfg.preemption_mode = PreemptionMode::kRecompute;
  ServingEngine recompute_serving(cfg);

  PreemptingScheduler s1(3, false);
  PreemptingScheduler s2(3, false);
  auto swap_r = swap_serving.Serve(trace, &s1);
  auto rec_r = recompute_serving.Serve(trace, &s2);
  ASSERT_TRUE(swap_r.ok()) << swap_r.status().ToString();
  ASSERT_TRUE(rec_r.ok()) << rec_r.status().ToString();
  EXPECT_GT(swap_r->swap_outs, 0);
  EXPECT_EQ(rec_r->swap_outs, 0);
  ASSERT_EQ(swap_r->tokens.size(), rec_r->tokens.size());
  for (const auto& [id, toks] : swap_r->tokens) {
    auto it = rec_r->tokens.find(id);
    ASSERT_NE(it, rec_r->tokens.end());
    EXPECT_EQ(toks, it->second) << "request " << id;
  }
}

TEST(EngineSwapTest, FullSwapSpaceFallsBackToRecompute) {
  ServingEngineConfig cfg = EngineCfg();
  cfg.swap_blocks = 1;
  ServingEngine serving(cfg);
  PreemptingScheduler sched(3, false);
  auto r = serving.Serve(BurstTrace(3, 12, 10), &sched);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->swap_outs, 0);
  EXPECT_GT(r->preemptions, 0);
  EXPECT_EQ(r->tokens_generated, 3 * 10);
}

TEST(EngineSwapTest, ConversionBypassesSwap) {
  ServingEngineConfig cfg = EngineCfg();
  ServingEngine serving(cfg);
  PreemptingScheduler sched(3, /*convert=*/true);
  auto r = serving.Serve(BurstTrace(3, 12, 10), &sched);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->swap_outs, 0);
  EXPECT_GT(r->report.conversions, 0);
  EXPECT_EQ(r->tokens_generated, 3 * 10);
}

// ---- Prefix sharing under swap preemption ---------------------------------
// Refcount churn: two bursts of identical prompts. The first burst fills
// the index; the second (arriving after the first drained) adopts its
// blocks, so every second-wave request holds shared references while the
// preempting scheduler swaps them out (shared references release, blocks
// survive via the index) and back in (as private copies). No step may ever
// free a block another request still references.

std::vector<Request> TwoWaveSharedTrace(int32_t per_wave, int32_t prompt,
                                        int32_t output, double wave_gap) {
  std::vector<Request> trace = BurstTrace(2 * per_wave, prompt, output);
  std::vector<int32_t> ids(prompt);
  for (int32_t i = 0; i < prompt; ++i) ids[i] = (3 + i * 7) % 64;
  for (int32_t i = 0; i < 2 * per_wave; ++i) {
    trace[i].token_ids = ids;  // one content for everyone: maximal sharing
    trace[i].arrival = i < per_wave ? 0.0 : wave_gap;
  }
  return trace;
}

TEST(EngineSwapTest, SwapPreemptionWithSharingKeepsReferencedBlocksSafe) {
  ServingEngineConfig cfg = EngineCfg();
  cfg.enable_prefix_sharing = true;
  ServingEngine serving(cfg);
  PreemptingScheduler sched(/*period=*/3, /*convert=*/false);
  // Wave 1 (3 requests, ~36 virtual items) drains long before wave 2
  // arrives at t=1.
  const auto trace = TwoWaveSharedTrace(3, 12, 10, 1.0);
  auto r = serving.Serve(trace, &sched);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->swap_outs, 0);
  EXPECT_EQ(r->swap_outs, r->swap_ins);
  EXPECT_GE(r->prefix.hits, 3);  // every wave-2 request adopts wave 1's blocks
  EXPECT_EQ(r->tokens_generated, 6 * 10);
  // All requests drained; only the index still owns blocks, every one of
  // them at refcount 1 — i.e. no reference was leaked or double-freed
  // through the swap round trips.
  EXPECT_EQ(serving.engine().pool().num_allocated(),
            serving.engine().prefix_index()->indexed_blocks());
  EXPECT_EQ(serving.engine().pool().num_shared(), 0);

  // Tokens must match the sharing-enabled recompute-mode run: swap-in
  // restores payload bit-identically even when the swapped map held
  // previously shared blocks.
  ServingEngineConfig rec_cfg = EngineCfg();
  rec_cfg.enable_prefix_sharing = true;
  rec_cfg.preemption_mode = PreemptionMode::kRecompute;
  ServingEngine recompute(rec_cfg);
  PreemptingScheduler sched2(/*period=*/3, /*convert=*/false);
  auto rec = recompute.Serve(trace, &sched2);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_EQ(r->tokens.size(), rec->tokens.size());
  for (const auto& [id, toks] : r->tokens) {
    auto it = rec->tokens.find(id);
    ASSERT_NE(it, rec->tokens.end());
    EXPECT_EQ(toks, it->second) << "request " << id;
  }
}

TEST(SimSwapTest, SwapPreemptionWithSharingDrainsCleanly) {
  SimulatorConfig cfg = SimCfg();
  cfg.enable_prefix_sharing = true;
  PreemptingScheduler sched(/*period=*/5, /*convert=*/false);
  Simulator sim(Opt13(), cfg);
  // Wave 2 arrives far after wave 1 drained on the virtual timeline, so
  // its requests adopt wave 1's indexed blocks; identical token content
  // across all requests (the analytic backend would otherwise synthesize
  // per-id content that never matches).
  const auto trace = TwoWaveSharedTrace(3, 100, 40, /*wave_gap=*/500.0);
  auto r = sim.Run(trace, &sched, SloSpec{10.0, 10.0});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->swap_outs, 0);
  EXPECT_EQ(r->swap_outs, r->swap_ins);
  EXPECT_GE(r->prefix.hits, 3);
  EXPECT_GT(r->prefill_tokens_skipped, 0);
}

}  // namespace
}  // namespace aptserve
