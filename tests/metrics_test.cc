#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace aptserve {
namespace {

Request Req(RequestId id, TimePoint arrival) {
  Request r;
  r.id = id;
  r.prompt_len = 10;
  r.output_len = 5;
  r.arrival = arrival;
  return r;
}

TEST(RequestRecordTest, SloChecks) {
  SloSpec slo{1.0, 0.5};
  RequestRecord rec;
  rec.spec = Req(0, 0.0);
  rec.ttft = 0.8;
  rec.tbt_samples = {0.1, 0.2, 0.3};
  EXPECT_TRUE(rec.MeetsTtft(slo));
  EXPECT_TRUE(rec.MeetsTbt(slo));
  EXPECT_TRUE(rec.MeetsSlo(slo));
  rec.ttft = 1.2;
  EXPECT_FALSE(rec.MeetsTtft(slo));
  EXPECT_FALSE(rec.MeetsSlo(slo));
}

TEST(RequestRecordTest, P99TbtIsTailSensitive) {
  RequestRecord rec;
  for (int i = 0; i < 49; ++i) rec.tbt_samples.push_back(0.05);
  rec.tbt_samples.push_back(5.0);  // one stall
  EXPECT_GT(rec.P99Tbt(), 0.05);
  SloSpec slo{1.0, 1.0};
  EXPECT_FALSE(rec.MeetsTbt(slo));
}

TEST(RequestRecordTest, NoTbtSamplesVacuouslyMet) {
  RequestRecord rec;
  rec.ttft = 0.2;
  EXPECT_TRUE(rec.MeetsTbt(SloSpec{1.0, 0.001}));
}

TEST(RequestRecordTest, NoFirstTokenFailsTtft) {
  RequestRecord rec;  // ttft = -1
  EXPECT_FALSE(rec.MeetsTtft(SloSpec{100.0, 1.0}));
}

TEST(MetricsCollectorTest, TokenTimelineProducesTtftAndTbt) {
  MetricsCollector mc;
  mc.RegisterRequest(Req(1, 10.0));
  mc.OnToken(1, 10.5);  // TTFT = 0.5
  mc.OnToken(1, 10.7);  // TBT = 0.2
  mc.OnToken(1, 11.7);  // TBT = 1.0
  mc.OnFinish(1, 11.7);
  const auto& rec = mc.records().at(1);
  EXPECT_DOUBLE_EQ(rec.ttft, 0.5);
  ASSERT_EQ(rec.tbt_samples.size(), 2u);
  EXPECT_NEAR(rec.tbt_samples[0], 0.2, 1e-12);
  EXPECT_NEAR(rec.tbt_samples[1], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(rec.finish_time, 11.7);
}

TEST(MetricsCollectorTest, ReportAggregates) {
  SloSpec slo{1.0, 1.0};
  MetricsCollector mc;
  // Request 1 meets both; request 2 misses TTFT; request 3 misses TBT.
  mc.RegisterRequest(Req(1, 0.0));
  mc.OnToken(1, 0.5);
  mc.OnToken(1, 0.6);
  mc.RegisterRequest(Req(2, 0.0));
  mc.OnToken(2, 3.0);
  mc.OnToken(2, 3.1);
  mc.RegisterRequest(Req(3, 0.0));
  mc.OnToken(3, 0.5);
  mc.OnToken(3, 4.0);
  auto rep = mc.Report(slo);
  EXPECT_NEAR(rep.slo_attainment, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(rep.ttft_attainment, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(rep.tbt_attainment, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(rep.ttfts.count(), 3u);
}

TEST(MetricsCollectorTest, BatchLimitRatio) {
  MetricsCollector mc;
  mc.RegisterRequest(Req(1, 0.0));
  mc.OnToken(1, 1.0);
  mc.OnIteration(2.0, 4, false);
  mc.OnIteration(1.0, 8, true);
  mc.OnIteration(1.0, 8, true);
  auto rep = mc.Report(SloSpec{});
  EXPECT_DOUBLE_EQ(rep.batch_limit_time_ratio, 0.5);
  EXPECT_DOUBLE_EQ(rep.total_serving_time, 4.0);
  EXPECT_EQ(rep.iterations, 3);
  EXPECT_NEAR(rep.mean_batch_size, (4 + 8 + 8) / 3.0, 1e-12);
}

TEST(MetricsCollectorTest, PreemptionAndConversionCounts) {
  MetricsCollector mc;
  mc.RegisterRequest(Req(1, 0.0));
  mc.OnToken(1, 0.1);
  mc.OnPreemption();
  mc.OnPreemption();
  mc.OnConversion();
  auto rep = mc.Report(SloSpec{});
  EXPECT_EQ(rep.preemptions, 2);
  EXPECT_EQ(rep.conversions, 1);
}

TEST(MetricsCollectorTest, EmptyReport) {
  MetricsCollector mc;
  auto rep = mc.Report(SloSpec{});
  EXPECT_EQ(rep.slo_attainment, 0.0);
  EXPECT_EQ(rep.iterations, 0);
}


TEST(JainFairnessTest, EqualValuesAreOne) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({2.0, 2.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({0.0, 0.0}), 1.0);
}

TEST(JainFairnessTest, SingleHogApproachesOneOverN) {
  EXPECT_NEAR(JainFairnessIndex({100.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(JainFairnessTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({}), 0.0);
}

TEST(JainFairnessTest, ReportedInSloReport) {
  MetricsCollector mc;
  mc.RegisterRequest(Req(1, 0.0));
  mc.RegisterRequest(Req(2, 0.0));
  mc.OnToken(1, 1.0);   // TTFT 1
  mc.OnToken(2, 1.0);   // TTFT 1
  auto rep = mc.Report(SloSpec{});
  EXPECT_DOUBLE_EQ(rep.jain_fairness_ttft, 1.0);
}

// ---------------------------------------------------------------------------
// Per-request SLOs, goodput and rejection accounting (the fleet router's
// admission/attainment math).
// ---------------------------------------------------------------------------

TEST(RequestRecordTest, PerRequestDeadlineOverridesRunLevelSlo) {
  SloSpec slo{1.0, 1.0};
  RequestRecord rec;
  rec.spec = Req(0, 0.0);
  rec.ttft = 0.8;
  // Tighter own deadline: the run-level SLO would pass, the request's own
  // must fail.
  rec.spec.slo_ttft_s = 0.5;
  EXPECT_DOUBLE_EQ(rec.TtftBound(slo), 0.5);
  EXPECT_FALSE(rec.MeetsTtft(slo));
  // Looser own deadline rescues a run-level miss.
  rec.ttft = 1.5;
  rec.spec.slo_ttft_s = 2.0;
  EXPECT_TRUE(rec.MeetsTtft(slo));
  // Negative (unset) inherits the run level.
  rec.spec.slo_ttft_s = -1.0;
  EXPECT_DOUBLE_EQ(rec.TtftBound(slo), 1.0);
  EXPECT_FALSE(rec.MeetsTtft(slo));
  // Per-request TBT bound works the same way.
  rec.tbt_samples = {0.7};
  EXPECT_TRUE(rec.MeetsTbt(slo));
  rec.spec.slo_tbt_p99_s = 0.5;
  EXPECT_FALSE(rec.MeetsTbt(slo));
}

TEST(RequestRecordTest, DeadlineExactlyMetCounts) {
  SloSpec slo{1.0, 0.5};
  RequestRecord rec;
  rec.spec = Req(0, 0.0);
  rec.ttft = 1.0;  // exactly the bound
  EXPECT_TRUE(rec.MeetsTtft(slo));
  rec.spec.slo_ttft_s = 0.25;
  rec.ttft = 0.25;  // exactly the per-request bound
  EXPECT_TRUE(rec.MeetsTtft(slo));
  rec.tbt_samples = {0.5};  // P99 == bound
  EXPECT_TRUE(rec.MeetsTbt(slo));
  EXPECT_TRUE(rec.MeetsSlo(slo));
}

TEST(MetricsCollectorTest, GoodputCountsSloMetPerServingSecond) {
  SloSpec slo{1.0, 1.0};
  MetricsCollector mc;
  mc.RegisterRequest(Req(1, 0.0));
  mc.OnToken(1, 0.5);  // meets
  mc.RegisterRequest(Req(2, 0.0));
  mc.OnToken(2, 3.0);  // misses TTFT
  mc.OnIteration(2.0, 2, false);
  mc.OnIteration(2.0, 2, false);
  auto rep = mc.Report(slo);
  EXPECT_EQ(rep.slo_met_requests, 1);
  EXPECT_EQ(rep.eligible_requests, 2);
  EXPECT_DOUBLE_EQ(rep.goodput_rps, 1.0 / 4.0);
}

TEST(MetricsCollectorTest, GoodputZeroWithoutServingTime) {
  MetricsCollector mc;
  mc.RegisterRequest(Req(1, 0.0));
  mc.OnToken(1, 0.1);
  auto rep = mc.Report(SloSpec{1.0, 1.0});
  EXPECT_DOUBLE_EQ(rep.goodput_rps, 0.0);
}

TEST(MetricsCollectorTest, BestEffortExcludedFromAttainmentAndGoodput) {
  SloSpec slo{1.0, 1.0};
  MetricsCollector mc;
  Request fast = Req(1, 0.0);
  mc.RegisterRequest(fast);
  mc.OnToken(1, 0.5);  // meets, eligible
  Request be = Req(2, 0.0);
  be.best_effort = true;
  mc.RegisterRequest(be);
  mc.OnToken(2, 0.1);  // would meet, but best-effort
  mc.OnIteration(1.0, 2, false);
  auto rep = mc.Report(slo);
  EXPECT_EQ(rep.eligible_requests, 1);
  EXPECT_EQ(rep.best_effort_requests, 1);
  EXPECT_EQ(rep.slo_met_requests, 1);
  EXPECT_DOUBLE_EQ(rep.slo_attainment, 1.0);  // over eligible only
  EXPECT_DOUBLE_EQ(rep.goodput_rps, 1.0);
  // Latency samples still cover everyone.
  EXPECT_EQ(rep.ttfts.count(), 2u);
}

TEST(FoldRejectedTest, RejectedEnterAttainmentDenominator) {
  SloReport rep;
  rep.eligible_requests = 3;
  rep.slo_attainment = 1.0;
  rep.ttft_attainment = 1.0;
  rep.tbt_attainment = 2.0 / 3.0;
  rep.goodput_rps = 0.5;
  FoldRejectedIntoReport(1, &rep);
  EXPECT_EQ(rep.rejected_requests, 1);
  EXPECT_DOUBLE_EQ(rep.slo_attainment, 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(rep.ttft_attainment, 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(rep.tbt_attainment, (2.0 / 3.0) * (3.0 / 4.0));
  // Goodput is unchanged: rejected requests consume no serving time.
  EXPECT_DOUBLE_EQ(rep.goodput_rps, 0.5);
}

TEST(FoldRejectedTest, FoldingTwiceComposes) {
  SloReport rep;
  rep.eligible_requests = 2;
  rep.slo_attainment = 1.0;
  FoldRejectedIntoReport(1, &rep);
  FoldRejectedIntoReport(1, &rep);
  EXPECT_EQ(rep.rejected_requests, 2);
  EXPECT_DOUBLE_EQ(rep.slo_attainment, 2.0 / 4.0);
}

TEST(FoldRejectedTest, EdgeCases) {
  // No rejects: no-op.
  SloReport rep;
  rep.eligible_requests = 5;
  rep.slo_attainment = 0.8;
  FoldRejectedIntoReport(0, &rep);
  EXPECT_EQ(rep.rejected_requests, 0);
  EXPECT_DOUBLE_EQ(rep.slo_attainment, 0.8);
  // Everything rejected: attainment pinned at zero.
  SloReport all_rejected;
  FoldRejectedIntoReport(10, &all_rejected);
  EXPECT_EQ(all_rejected.rejected_requests, 10);
  EXPECT_DOUBLE_EQ(all_rejected.slo_attainment, 0.0);
}

}  // namespace
}  // namespace aptserve
