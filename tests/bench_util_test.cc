// Bench-harness regression tests (bench/bench_util.h): the
// effective-throughput readout must be order-independent over the rate
// list, and JsonObject must escape keys as well as values so
// sweep-generated snapshots with arbitrary ablation names stay parseable.
#include "bench/bench_util.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/json.h"

namespace aptserve {
namespace bench {
namespace {

TEST(HighestPassingRateTest, ShuffledRatesStillReturnMax) {
  // Regression: the old loop kept the *last* passing rate in iteration
  // order, so any unsorted rate list could under-report throughput. With
  // pass = rate <= 2.5, the highest passing rate is 2.0 regardless of
  // where it sits in the list.
  const auto passes = [](double rate) { return rate <= 2.5; };
  EXPECT_DOUBLE_EQ(HighestPassingRate({0.5, 1.0, 2.0, 4.0}, passes), 2.0);
  EXPECT_DOUBLE_EQ(HighestPassingRate({2.0, 4.0, 1.0, 0.5}, passes), 2.0);
  EXPECT_DOUBLE_EQ(HighestPassingRate({4.0, 0.5, 2.0, 1.0}, passes), 2.0);
  EXPECT_DOUBLE_EQ(HighestPassingRate({1.0, 2.0, 0.5}, passes), 2.0);
}

TEST(HighestPassingRateTest, NonMonotonePassSet) {
  // A rate can fail while a higher one passes (noisy attainment); the max
  // over the passing set is still what the readout reports.
  const auto passes = [](double rate) { return rate != 2.0; };
  EXPECT_DOUBLE_EQ(HighestPassingRate({1.0, 2.0, 3.0}, passes), 3.0);
  EXPECT_DOUBLE_EQ(HighestPassingRate({3.0, 2.0, 1.0}, passes), 3.0);
}

TEST(HighestPassingRateTest, NothingPassesIsZero) {
  EXPECT_DOUBLE_EQ(
      HighestPassingRate({1.0, 2.0}, [](double) { return false; }), 0.0);
  EXPECT_DOUBLE_EQ(HighestPassingRate({}, [](double) { return true; }), 0.0);
}

TEST(JsonObjectTest, KeysAreEscapedLikeValues) {
  JsonObject obj;
  obj.Str("ablation \"no-hedge\"\n", "value with \"quotes\"");
  obj.Num("plain", 1.5);
  const std::string rendered = obj.Render();
  // Regression: keys used to be emitted raw, so a quote in an ablation
  // name produced unparseable JSON. The rendered object must parse, and
  // the key must survive exactly.
  auto parsed = json::ParseJson(rendered);
  ASSERT_TRUE(parsed.ok()) << rendered << " -> "
                           << parsed.status().ToString();
  const json::JsonValue* v = parsed->Find("ablation \"no-hedge\"\n");
  ASSERT_NE(v, nullptr) << rendered;
  EXPECT_EQ(v->string_value(), "value with \"quotes\"");
  EXPECT_DOUBLE_EQ(parsed->GetNumber("plain", 0.0), 1.5);
}

TEST(JsonObjectTest, NonFiniteNumbersRenderNull) {
  JsonObject obj;
  obj.Num("inf", std::numeric_limits<double>::infinity());
  auto parsed = json::ParseJson(obj.Render());
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed->Find("inf"), nullptr);
  EXPECT_TRUE(parsed->Find("inf")->is_null());
}

}  // namespace
}  // namespace bench
}  // namespace aptserve
