// Fleet Router tests: legacy-policy parity (the router must reproduce the
// pre-router DispatchTrace bit-for-bit, pinned against a verbatim copy of
// the old implementation), the new least-outstanding-work and
// prefix-affinity policies, SLO admission control, and the cross-backend
// agreement of routed fleets (via tests/backend_diff_util.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "backend_diff_util.h"
#include "baselines/fcfs_scheduler.h"
#include "common/rng.h"
#include "serve/cost_model_backend.h"
#include "serve/inference_backend.h"
#include "serve/multi_instance.h"
#include "serve/router.h"
#include "workload/shared_prefix.h"
#include "workload/trace.h"

namespace aptserve {
namespace {

// ---------------------------------------------------------------------------
// The pre-router DispatchTrace, verbatim (the PR-2-era implementation).
// ---------------------------------------------------------------------------

std::vector<int32_t> LegacyDispatchTrace(const std::vector<Request>& trace,
                                         const DispatchConfig& config) {
  const int32_t n = config.n_instances;
  std::vector<int32_t> assignment(trace.size(), 0);
  if (n == 1) return assignment;

  std::vector<std::deque<std::pair<TimePoint, int64_t>>> window(n);
  std::vector<int64_t> backlog(n, 0);
  Rng rng(config.dispatch_seed);

  auto expire = [&](TimePoint now) {
    for (int32_t i = 0; i < n; ++i) {
      while (!window[i].empty() &&
             window[i].front().first < now - config.load_window_s) {
        backlog[i] -= window[i].front().second;
        window[i].pop_front();
      }
    }
  };
  auto assign = [&](size_t req_idx, int32_t inst) {
    assignment[req_idx] = inst;
    window[inst].emplace_back(trace[req_idx].arrival,
                              trace[req_idx].prompt_len);
    backlog[inst] += trace[req_idx].prompt_len;
  };

  for (size_t r = 0; r < trace.size(); ++r) {
    expire(trace[r].arrival);
    switch (config.policy) {
      case DispatchPolicy::kRoundRobin:
        assign(r, static_cast<int32_t>(r % n));
        break;
      case DispatchPolicy::kLeastLoaded: {
        int32_t best = 0;
        for (int32_t i = 1; i < n; ++i) {
          if (backlog[i] < backlog[best]) best = i;
        }
        assign(r, best);
        break;
      }
      case DispatchPolicy::kPowerOfTwo: {
        const int32_t a = static_cast<int32_t>(rng.UniformInt(0, n - 1));
        int32_t b = static_cast<int32_t>(rng.UniformInt(0, n - 2));
        if (b >= a) ++b;
        assign(r, backlog[a] <= backlog[b] ? a : b);
        break;
      }
    }
  }
  return assignment;
}

CostModel Opt13() {
  const ModelSpec m = ModelSpec::Opt13B();
  return CostModel(m, ClusterSpec::ForModel(m));
}

std::vector<Request> MakeTrace(double rate, int n, uint64_t seed = 6) {
  TraceConfig tc;
  tc.profile = DatasetProfile::ShareGpt();
  tc.num_requests = n;
  tc.rate_per_sec = rate;
  tc.seed = seed;
  auto t = BuildTrace(tc);
  EXPECT_TRUE(t.ok());
  return *t;
}

std::vector<Request> ConversationTrace(int32_t fan_out, int32_t turns = 4,
                                       int32_t tokens_per_turn = 16,
                                       int32_t system_prompt = 16) {
  SharedPrefixConfig cfg;
  cfg.system_prompt_len = system_prompt;
  cfg.num_conversations = fan_out;
  cfg.turns_per_conversation = turns;
  cfg.tokens_per_turn = tokens_per_turn;
  cfg.output_len_mean = 4;
  cfg.vocab_size = ModelConfig::Tiny().vocab_size;
  cfg.think_time_s = 2.0;
  cfg.conversation_stagger_s = 0.25;
  auto trace = BuildSharedPrefixTrace(cfg);
  EXPECT_TRUE(trace.ok());
  return *trace;
}

BackendFactory CostBackendFactory(const CostModel& cm, bool sharing,
                                  int32_t block_size = 4,
                                  int32_t pool_blocks = 512) {
  return [&cm, sharing, block_size,
          pool_blocks](int32_t) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
    CostModelBackend::Options o;
    o.block_size = block_size;
    o.pool_blocks_override = pool_blocks;
    o.enable_prefix_sharing = sharing;
    o.token_vocab = ModelConfig::Tiny().vocab_size;
    APT_ASSIGN_OR_RETURN(std::unique_ptr<CostModelBackend> backend,
                         CostModelBackend::Create(cm, o));
    return std::unique_ptr<ExecutionBackend>(std::move(backend));
  };
}

BackendFactory EngineBackendFactory(bool sharing, int32_t block_size = 4,
                                    int32_t pool_blocks = 512) {
  return [sharing, block_size,
          pool_blocks](int32_t) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
    InferenceBackendOptions o;
    o.virtual_timing = true;
    o.enable_prefix_sharing = sharing;
    return std::unique_ptr<ExecutionBackend>(
        std::make_unique<InferenceBackend>(ModelConfig::Tiny(),
                                           /*weight_seed=*/42, pool_blocks,
                                           block_size, SamplingParams{}, o));
  };
}

// ---------------------------------------------------------------------------
// Legacy-policy parity.
// ---------------------------------------------------------------------------

class LegacyPolicyParity
    : public ::testing::TestWithParam<DispatchPolicy> {};

TEST_P(LegacyPolicyParity, RouterReproducesPrePrDispatchBitForBit) {
  DispatchConfig cfg;
  cfg.policy = GetParam();
  for (int32_t n : {1, 2, 3, 5}) {
    cfg.n_instances = n;
    for (double rate : {0.5, 8.0, 50.0}) {
      const auto trace = MakeTrace(rate, 160, 7 + n);
      const auto legacy = LegacyDispatchTrace(trace, cfg);
      // Both the kept DispatchTrace entry point and a Router built from
      // the same config must agree with the pre-PR implementation.
      EXPECT_EQ(legacy, DispatchTrace(trace, cfg));
      const RouteDecision d = Router(ToRouterConfig(cfg)).Route(trace);
      EXPECT_EQ(legacy, d.assignment);
      EXPECT_EQ(d.rejected, 0);
      EXPECT_EQ(d.admitted, static_cast<int64_t>(trace.size()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, LegacyPolicyParity,
                         ::testing::Values(DispatchPolicy::kRoundRobin,
                                           DispatchPolicy::kLeastLoaded,
                                           DispatchPolicy::kPowerOfTwo),
                         [](const auto& info) {
                           return DispatchPolicyName(info.param) ==
                                          std::string("round-robin")
                                      ? "RoundRobin"
                                      : DispatchPolicyName(info.param) ==
                                                std::string("least-loaded")
                                            ? "LeastLoaded"
                                            : "PowerOfTwo";
                         });

TEST(RouterParityTest, RoundRobinFleetReportMatchesLegacyRunnerBitForBit) {
  // Full end-to-end pin: a Router-driven fleet under round-robin must
  // reproduce the pre-router runner's merged report exactly.
  const SloSpec slo{1.0, 1.0};
  const CostModel cm = Opt13();
  const auto trace = MakeTrace(6.0, 150, 21);

  DispatchConfig legacy;
  legacy.n_instances = 3;
  legacy.policy = DispatchPolicy::kRoundRobin;
  MultiInstanceRunner legacy_runner(legacy, ServingLoopConfig{});
  auto legacy_result =
      legacy_runner.Run(trace, [] { return std::make_unique<FcfsScheduler>(); },
                        CostBackendFactory(cm, false, 16, -1), slo);
  ASSERT_TRUE(legacy_result.ok()) << legacy_result.status().ToString();

  RouterConfig rc;
  rc.n_instances = 3;
  rc.policy = RoutePolicy::kRoundRobin;
  MultiInstanceRunner routed(Router(rc), ServingLoopConfig{});
  auto routed_result =
      routed.Run(trace, [] { return std::make_unique<FcfsScheduler>(); },
                 CostBackendFactory(cm, false, 16, -1), slo);
  ASSERT_TRUE(routed_result.ok()) << routed_result.status().ToString();

  EXPECT_EQ(legacy_result->requests_per_instance,
            routed_result->requests_per_instance);
  EXPECT_EQ(legacy_result->combined.total_serving_time,
            routed_result->combined.total_serving_time);
  EXPECT_EQ(legacy_result->combined.slo_attainment,
            routed_result->combined.slo_attainment);
  EXPECT_EQ(legacy_result->combined.iterations,
            routed_result->combined.iterations);
  EXPECT_EQ(legacy_result->combined.ttfts.samples(),
            routed_result->combined.ttfts.samples());
}

// ---------------------------------------------------------------------------
// Least-outstanding-work.
// ---------------------------------------------------------------------------

TEST(RouterPolicyTest, LeastOutstandingWorkAvoidsTheBusyInstance) {
  // One huge request lands on instance 0; the following burst must drain
  // to instance 1 until the predicted backlogs equalize.
  std::vector<Request> trace;
  Request big;
  big.id = 0;
  big.prompt_len = 4000;
  big.output_len = 64;
  big.arrival = 0.0;
  trace.push_back(big);
  for (int i = 1; i <= 6; ++i) {
    Request r;
    r.id = i;
    r.prompt_len = 32;
    r.output_len = 8;
    r.arrival = 0.001 * i;  // well inside the big request's service time
    trace.push_back(r);
  }

  RouterConfig rc;
  rc.n_instances = 2;
  rc.policy = RoutePolicy::kLeastOutstandingWork;
  rc.default_output_len = 8.0;  // estimates track prompt size, not decode
  const CostModel cm = Opt13();
  const Router router(rc, &cm);
  const RouteDecision d = router.Route(trace);
  EXPECT_EQ(d.assignment[0], 0);
  // The burst starts on the idle instance...
  EXPECT_EQ(d.assignment[1], 1);
  EXPECT_EQ(d.assignment[2], 1);
  // ...and LOW balances *predicted seconds*: the gap between the two
  // instances' routed work never exceeds one request's service time.
  double work[2] = {0.0, 0.0};
  double max_service = 0.0;
  for (size_t i = 0; i < trace.size(); ++i) {
    const double s = router.EstimatedServiceSeconds(trace[i]);
    work[d.assignment[i]] += s;
    max_service = std::max(max_service, s);
  }
  EXPECT_LE(std::abs(work[0] - work[1]), max_service);
}

TEST(RouterPolicyTest, LeastOutstandingWorkUsesThePredictor) {
  // Same prompt lengths, but a predictor trained to expect very long
  // outputs for them inflates the work estimate; the router must still
  // balance (alternate) instead of dog-piling one instance.
  OutputLengthPredictor predictor;
  for (int i = 0; i < 50; ++i) predictor.Observe(64, 512);

  std::vector<Request> trace;
  for (int i = 0; i < 8; ++i) {
    Request r;
    r.id = i;
    r.prompt_len = 64;
    r.output_len = 8;
    r.arrival = 0.01 * i;
    trace.push_back(r);
  }
  RouterConfig rc;
  rc.n_instances = 2;
  rc.policy = RoutePolicy::kLeastOutstandingWork;
  const CostModel cm = Opt13();
  const Router with(rc, &cm, &predictor);
  const Router without(rc, &cm);
  // Predicted service time grows with the trained output length.
  EXPECT_GT(with.EstimatedServiceSeconds(trace[0]),
            without.EstimatedServiceSeconds(trace[0]));
  const RouteDecision d = with.Route(trace);
  int32_t per[2] = {0, 0};
  for (int32_t a : d.assignment) ++per[a];
  EXPECT_EQ(per[0], 4);
  EXPECT_EQ(per[1], 4);
}

// ---------------------------------------------------------------------------
// Prefix affinity.
// ---------------------------------------------------------------------------

TEST(RouterPolicyTest, PrefixAffinityKeepsConversationsTogether) {
  // Turns of one conversation share a growing prefix; affinity must pin
  // every turn after the first to the first turn's instance.
  const auto trace = ConversationTrace(/*fan_out=*/5);
  RouterConfig rc;
  rc.n_instances = 2;
  rc.policy = RoutePolicy::kPrefixAffinity;
  rc.block_size = 4;
  rc.affinity_max_imbalance_s = 1e9;  // no cap: pure affinity
  const CostModel cm = Opt13();
  const RouteDecision d = Router(rc, &cm).Route(trace);

  // Group turns by conversation via their shared growing prefix: the
  // trace generator emits fan_out conversations whose turn k prompt
  // length is system + (k+1)*turn_tokens.
  std::map<std::vector<int32_t>, std::set<int32_t>> conv_instances;
  for (size_t i = 0; i < trace.size(); ++i) {
    std::vector<int32_t> conv_key(trace[i].token_ids.begin(),
                                  trace[i].token_ids.begin() + 20);
    conv_instances[conv_key].insert(d.assignment[i]);
  }
  EXPECT_EQ(conv_instances.size(), 5u);
  for (const auto& [key, instances] : conv_instances) {
    (void)key;
    EXPECT_EQ(instances.size(), 1u)
        << "a conversation was split across instances";
  }
}

TEST(RouterPolicyTest, AffinityImbalanceCapSpreadsAHotPrefix) {
  // Every request shares the same long prefix. Unbounded affinity piles
  // everything on instance 0; the cap forces spill to other instances.
  std::vector<Request> trace;
  Rng rng(3);
  std::vector<int32_t> shared;
  for (int i = 0; i < 64; ++i) {
    shared.push_back(static_cast<int32_t>(rng.UniformInt(0, 1000)));
  }
  for (int i = 0; i < 16; ++i) {
    Request r;
    r.id = i;
    r.prompt_len = 72;
    r.token_ids = shared;
    for (int j = 0; j < 8; ++j) {
      r.token_ids.push_back(static_cast<int32_t>(rng.UniformInt(0, 1000)));
    }
    r.output_len = 16;
    r.arrival = 0.01 * i;
    trace.push_back(r);
  }

  RouterConfig rc;
  rc.n_instances = 4;
  rc.policy = RoutePolicy::kPrefixAffinity;
  rc.block_size = 4;
  const CostModel cm = Opt13();

  rc.affinity_max_imbalance_s = 1e9;
  const RouteDecision uncapped = Router(rc, &cm).Route(trace);
  std::set<int32_t> uncapped_used(uncapped.assignment.begin(),
                                  uncapped.assignment.end());
  EXPECT_EQ(uncapped_used.size(), 1u) << "pure affinity should funnel";

  rc.affinity_max_imbalance_s = 0.05;
  const RouteDecision capped = Router(rc, &cm).Route(trace);
  std::set<int32_t> capped_used(capped.assignment.begin(),
                                capped.assignment.end());
  EXPECT_GT(capped_used.size(), 1u) << "the cap must force spill";
}

TEST(RouterPolicyTest, AffinityWithoutTokenIdsFallsBackToLeastWork) {
  const auto trace = MakeTrace(10.0, 40, 5);  // length-only trace
  RouterConfig rc;
  rc.n_instances = 2;
  rc.policy = RoutePolicy::kPrefixAffinity;
  const CostModel cm = Opt13();
  const RouteDecision affinity = Router(rc, &cm).Route(trace);
  rc.policy = RoutePolicy::kLeastOutstandingWork;
  const RouteDecision low = Router(rc, &cm).Route(trace);
  EXPECT_EQ(affinity.assignment, low.assignment);
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

TEST(RouterAdmissionTest, RejectsRequestsThatCannotMeetTheirDeadline) {
  // A wall of work, then a request with an impossible deadline.
  std::vector<Request> trace;
  for (int i = 0; i < 4; ++i) {
    Request r;
    r.id = i;
    r.prompt_len = 2000;
    r.output_len = 64;
    r.arrival = 0.001 * i;
    trace.push_back(r);
  }
  Request tight;
  tight.id = 4;
  tight.prompt_len = 256;
  tight.output_len = 8;
  tight.arrival = 0.01;
  tight.slo_ttft_s = 1e-4;  // cannot be met behind any backlog
  trace.push_back(tight);

  RouterConfig rc;
  rc.n_instances = 1;
  rc.policy = RoutePolicy::kLeastOutstandingWork;
  rc.admission = AdmissionMode::kReject;
  rc.default_slo = SloSpec{1e9, 1e9};  // only the tight request can fail
  const CostModel cm = Opt13();
  const RouteDecision d = Router(rc, &cm).Route(trace);
  EXPECT_EQ(d.rejected, 1);
  EXPECT_EQ(d.assignment[4], RouteDecision::kRejected);
  EXPECT_EQ(d.admitted, 4);
}

TEST(RouterAdmissionTest, SpillsToIdleInstanceBeforeRejecting) {
  // Round-robin would bounce request 2 back to the busy instance 0; with
  // admission on, the predicted deadline miss must spill it to the idle
  // instance 1 instead of turning it away.
  std::vector<Request> trace;
  Request big;
  big.id = 0;
  big.prompt_len = 4000;
  big.output_len = 64;
  big.arrival = 0.0;
  trace.push_back(big);
  Request small1;
  small1.id = 1;
  small1.prompt_len = 32;
  small1.output_len = 8;
  small1.arrival = 0.001;
  trace.push_back(small1);
  Request small2 = small1;  // round-robin target: the busy instance 0
  small2.id = 2;
  small2.arrival = 0.002;
  small2.slo_ttft_s = 0.5;  // misses behind `big`, fine on an idle instance
  trace.push_back(small2);

  RouterConfig rc;
  rc.n_instances = 2;
  rc.policy = RoutePolicy::kRoundRobin;
  rc.admission = AdmissionMode::kReject;
  rc.default_slo = SloSpec{1e9, 1e9};
  rc.default_output_len = 8.0;
  const CostModel cm = Opt13();
  const RouteDecision d = Router(rc, &cm).Route(trace);
  EXPECT_EQ(d.rejected, 0);
  EXPECT_EQ(d.assignment[0], 0);
  EXPECT_EQ(d.assignment[1], 1);
  EXPECT_EQ(d.assignment[2], 1) << "deadline miss must spill, not reject";
}

TEST(RouterAdmissionTest, RejectionsFoldIntoFleetAttainmentAndGoodput) {
  const SloSpec slo{1.0, 1.0};
  const CostModel cm = Opt13();
  auto trace = MakeTrace(4.0, 60, 12);
  // Give half the trace an impossible per-request deadline.
  for (size_t i = 0; i < trace.size(); i += 2) trace[i].slo_ttft_s = 1e-7;

  RouterConfig rc;
  rc.n_instances = 2;
  rc.policy = RoutePolicy::kLeastOutstandingWork;
  rc.admission = AdmissionMode::kReject;
  // Untagged requests have an unmissable default deadline, so exactly the
  // tagged half is rejected (no backlog cascade in this pin).
  rc.default_slo = SloSpec{1e9, 1e9};
  MultiInstanceRunner runner(Router(rc, &cm), ServingLoopConfig{});
  auto result =
      runner.Run(trace, [] { return std::make_unique<FcfsScheduler>(); },
                 CostBackendFactory(cm, false, 16, -1), slo);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->rejected_requests, 30);
  EXPECT_EQ(result->combined.rejected_requests, 30);
  // No request lost: admitted shards + rejected == trace.
  int64_t admitted = 0;
  for (int32_t c : result->requests_per_instance) admitted += c;
  EXPECT_EQ(admitted + result->rejected_requests,
            static_cast<int64_t>(trace.size()));
  // Rejected requests are attainment misses: the folded attainment is the
  // per-served attainment scaled by served / total.
  EXPECT_LE(result->combined.slo_attainment, 0.5);
  EXPECT_GT(result->combined.goodput_rps, 0.0);
}

TEST(RouterAdmissionTest, DeprioritizeServesBestEffort) {
  const SloSpec slo{1.0, 1.0};
  const CostModel cm = Opt13();
  auto trace = MakeTrace(4.0, 40, 12);
  for (size_t i = 0; i < trace.size(); i += 2) trace[i].slo_ttft_s = 1e-7;

  RouterConfig rc;
  rc.n_instances = 2;
  rc.policy = RoutePolicy::kLeastOutstandingWork;
  rc.admission = AdmissionMode::kDeprioritize;
  rc.default_slo = SloSpec{1e9, 1e9};  // only the tagged half deprioritizes
  MultiInstanceRunner runner(Router(rc, &cm), ServingLoopConfig{});
  auto result =
      runner.Run(trace, [] { return std::make_unique<FcfsScheduler>(); },
                 CostBackendFactory(cm, false, 16, -1), slo);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Everyone is served; the deprioritized half is excluded from
  // attainment/goodput but still produces latency samples.
  EXPECT_EQ(result->rejected_requests, 0);
  EXPECT_EQ(result->deprioritized_requests, 20);
  EXPECT_EQ(result->combined.best_effort_requests, 20);
  EXPECT_EQ(result->combined.eligible_requests, 20);
  int64_t admitted = 0;
  for (int32_t c : result->requests_per_instance) admitted += c;
  EXPECT_EQ(admitted, static_cast<int64_t>(trace.size()));
  EXPECT_EQ(result->combined.ttfts.count(), trace.size());
}

// ---------------------------------------------------------------------------
// Routed fleets across backends (uses the differential harness).
// ---------------------------------------------------------------------------

TEST(RouterFleetTest, AffinityBeatsRoundRobinOnPrefillTokens) {
  // The acceptance-criterion shape at test scale: prefix-affinity must cut
  // computed prefill tokens by >= 1.5x vs round-robin on a shared-prefix
  // fleet workload (both fleets share-enabled, cost-model backend).
  const auto trace = ConversationTrace(/*fan_out=*/5);
  const CostModel cm = Opt13();
  const SloSpec slo{10.0, 10.0};

  auto run = [&](RoutePolicy policy) {
    RouterConfig rc;
    rc.n_instances = 2;
    rc.policy = policy;
    rc.block_size = 4;
    MultiInstanceRunner runner(Router(rc, &cm), ServingLoopConfig{});
    auto result =
        runner.Run(trace, [] { return std::make_unique<FcfsScheduler>(); },
                   CostBackendFactory(cm, true), slo);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  };

  const MultiInstanceResult rr = run(RoutePolicy::kRoundRobin);
  const MultiInstanceResult aff = run(RoutePolicy::kPrefixAffinity);
  ASSERT_GT(rr.prefill_tokens_computed, 0);
  ASSERT_GT(aff.prefill_tokens_skipped, rr.prefill_tokens_skipped);
  const double reduction =
      static_cast<double>(rr.prefill_tokens_computed) /
      static_cast<double>(aff.prefill_tokens_computed);
  EXPECT_GE(reduction, 1.5) << "affinity reduction " << reduction << "x";
}

TEST(RouterFleetTest, RoutedShardsAgreeAcrossBackends) {
  // Route once (routing is backend-independent), then run every shard
  // through the differential harness: completion order, prefill skips and
  // PrefixStats must match between the analytic and engine backends.
  const auto trace = ConversationTrace(/*fan_out=*/3, /*turns=*/3,
                                       /*tokens_per_turn=*/8,
                                       /*system_prompt=*/16);
  RouterConfig rc;
  rc.n_instances = 2;
  rc.policy = RoutePolicy::kPrefixAffinity;
  rc.block_size = 4;
  const CostModel cm = Opt13();
  const RouteDecision d = Router(rc, &cm).Route(trace);

  for (int32_t inst = 0; inst < rc.n_instances; ++inst) {
    std::vector<Request> shard;
    for (size_t i = 0; i < trace.size(); ++i) {
      if (d.assignment[i] == inst) shard.push_back(trace[i]);
    }
    if (shard.empty()) continue;
    testing_util::DiffOptions opts;
    opts.block_size = 4;
    opts.pool_blocks = 256;
    auto diff = testing_util::RunBackendDiff(shard, opts);
    ASSERT_TRUE(diff.ok()) << diff.status().ToString();
    testing_util::ExpectBackendAgreement(*diff);
  }
}

TEST(RouterFleetTest, FleetPrefixStatsIdenticalAcrossBackends) {
  // Whole-fleet version: run the same routed trace on a cost-model fleet
  // and an engine fleet; fleet-level and per-instance PrefixStats must be
  // identical (the acceptance criterion's cross-backend clause).
  const auto trace = ConversationTrace(/*fan_out=*/3, /*turns=*/3,
                                       /*tokens_per_turn=*/8,
                                       /*system_prompt=*/16);
  const CostModel cm = Opt13();
  const SloSpec slo{10.0, 10.0};
  RouterConfig rc;
  rc.n_instances = 2;
  rc.policy = RoutePolicy::kPrefixAffinity;
  rc.block_size = 4;
  MultiInstanceRunner runner(Router(rc, &cm), ServingLoopConfig{});

  auto cost = runner.Run(trace,
                         [] { return std::make_unique<FcfsScheduler>(); },
                         CostBackendFactory(cm, true, 4, 256), slo);
  auto engine = runner.Run(trace,
                           [] { return std::make_unique<FcfsScheduler>(); },
                           EngineBackendFactory(true, 4, 256), slo);
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  EXPECT_EQ(cost->requests_per_instance, engine->requests_per_instance);
  EXPECT_EQ(cost->prefill_tokens_skipped, engine->prefill_tokens_skipped);
  EXPECT_EQ(cost->prefix.lookups, engine->prefix.lookups);
  EXPECT_EQ(cost->prefix.hits, engine->prefix.hits);
  EXPECT_EQ(cost->prefix.matched_tokens, engine->prefix.matched_tokens);
  EXPECT_EQ(cost->prefix.shared_blocks, engine->prefix.shared_blocks);
  EXPECT_EQ(cost->prefix.cow_matches, engine->prefix.cow_matches);
  for (int32_t i = 0; i < rc.n_instances; ++i) {
    EXPECT_EQ(cost->prefix_per_instance[i].hits,
              engine->prefix_per_instance[i].hits)
        << "instance " << i;
    EXPECT_EQ(cost->prefix_per_instance[i].matched_tokens,
              engine->prefix_per_instance[i].matched_tokens)
        << "instance " << i;
  }
}

}  // namespace
}  // namespace aptserve
