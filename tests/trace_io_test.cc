#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/trace.h"

namespace aptserve {
namespace {

TEST(TraceIoTest, RoundTripPreservesEverything) {
  TraceConfig tc;
  tc.profile = DatasetProfile::ShareGpt();
  tc.num_requests = 100;
  tc.rate_per_sec = 3.0;
  tc.seed = 8;
  auto trace = BuildTrace(tc);
  ASSERT_TRUE(trace.ok());

  std::ostringstream out;
  WriteTraceCsv(*trace, &out);
  std::istringstream in(out.str());
  auto loaded = ReadTraceCsv(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), trace->size());
  for (size_t i = 0; i < trace->size(); ++i) {
    EXPECT_EQ((*loaded)[i].id, (*trace)[i].id);
    EXPECT_EQ((*loaded)[i].prompt_len, (*trace)[i].prompt_len);
    EXPECT_EQ((*loaded)[i].output_len, (*trace)[i].output_len);
    EXPECT_NEAR((*loaded)[i].arrival, (*trace)[i].arrival, 1e-9);
  }
}

TEST(TraceIoTest, RejectsBadHeader) {
  std::istringstream in("wrong,header\n1,2,3,4\n");
  EXPECT_TRUE(ReadTraceCsv(&in).status().IsInvalidArgument());
}

TEST(TraceIoTest, RejectsMalformedRows) {
  const char* bad_rows[] = {
      "id,arrival,prompt_len,output_len\n1,2.0,10\n",        // missing field
      "id,arrival,prompt_len,output_len\n1,2.0,10,5,9\n",    // extra field
      "id,arrival,prompt_len,output_len\n1,xyz,10,5\n",      // non-numeric
      "id,arrival,prompt_len,output_len\n1,2.0,0,5\n",       // zero prompt
      "id,arrival,prompt_len,output_len\n1,2.0,10,-1\n",     // neg output
      "id,arrival,prompt_len,output_len\n1,-2.0,10,5\n",     // neg arrival
  };
  for (const char* csv : bad_rows) {
    std::istringstream in(csv);
    EXPECT_TRUE(ReadTraceCsv(&in).status().IsInvalidArgument()) << csv;
  }
}

TEST(TraceIoTest, SkipsEmptyLinesAndSortsByArrival) {
  std::istringstream in(
      "id,arrival,prompt_len,output_len\n"
      "2,5.0,10,5\n"
      "\n"
      "1,1.0,20,3\n");
  auto trace = ReadTraceCsv(&in);
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace->size(), 2u);
  EXPECT_EQ((*trace)[0].id, 1);
  EXPECT_EQ((*trace)[1].id, 2);
}

TEST(TraceIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/apt_trace_test.csv";
  std::vector<Request> trace = {{0, 8, 4, 0.5}, {1, 16, 2, 1.5}};
  ASSERT_TRUE(SaveTrace(trace, path).ok());
  auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[1].prompt_len, 16);
}

TEST(TraceIoTest, LoadMissingFile) {
  EXPECT_TRUE(LoadTrace("/no/such/apt_trace.csv").status().IsNotFound());
}

TEST(TraceIoTest, TokenIdsRoundTrip) {
  // Prefix-sharing traces carry token content; the v2 column restores it
  // exactly, including a mix of requests with and without ids.
  std::vector<Request> trace(2);
  trace[0].id = 0;
  trace[0].arrival = 0.5;
  trace[0].prompt_len = 3;
  trace[0].output_len = 4;
  trace[0].token_ids = {7, 0, 12345};
  trace[1].id = 1;
  trace[1].arrival = 1.25;
  trace[1].prompt_len = 2;
  trace[1].output_len = 1;  // no token_ids: the field stays empty

  std::ostringstream out;
  WriteTraceCsv(trace, &out);
  EXPECT_NE(out.str().find("token_ids"), std::string::npos);
  std::istringstream in(out.str());
  auto loaded = ReadTraceCsv(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].token_ids, trace[0].token_ids);
  EXPECT_TRUE((*loaded)[1].token_ids.empty());
}

TEST(TraceIoTest, LengthOnlyTracesKeepLegacyFormat) {
  // Without token ids the emitted CSV is byte-identical to the v1 format,
  // so pre-sharing tooling and committed traces stay valid.
  std::vector<Request> trace(1);
  trace[0].id = 0;
  trace[0].arrival = 0.0;
  trace[0].prompt_len = 5;
  trace[0].output_len = 2;
  std::ostringstream out;
  WriteTraceCsv(trace, &out);
  EXPECT_EQ(out.str(), "id,arrival,prompt_len,output_len\n0,0,5,2\n");
}

TEST(TraceIoTest, RejectsTokenCountMismatch) {
  std::istringstream in(
      "id,arrival,prompt_len,output_len,token_ids\n0,0,3,1,1 2\n");
  EXPECT_TRUE(ReadTraceCsv(&in).status().IsInvalidArgument());
}

TEST(TraceIoTest, RejectsNegativeTokenIds) {
  std::istringstream in(
      "id,arrival,prompt_len,output_len,token_ids\n0,0,3,1,-5 3 7\n");
  EXPECT_TRUE(ReadTraceCsv(&in).status().IsInvalidArgument());
}

TEST(TraceIoTest, EmptyTraceRoundTrip) {
  std::ostringstream out;
  WriteTraceCsv({}, &out);
  std::istringstream in(out.str());
  auto trace = ReadTraceCsv(&in);
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace->empty());
}

}  // namespace
}  // namespace aptserve
