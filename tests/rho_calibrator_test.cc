#include "engine/rho_calibrator.h"

#include <gtest/gtest.h>

namespace aptserve {
namespace {

TEST(RhoCalibratorTest, ProducesPositiveLinearFit) {
  auto result = CalibrateRho(ModelConfig::Tiny(), 42, {8, 16, 32, 64}, 2);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->rho_seconds_per_token, 0.0);
  ASSERT_EQ(result->points.size(), 4u);
  for (const auto& p : result->points) {
    EXPECT_GT(p.kv_seconds, 0.0);
    EXPECT_GT(p.hidden_seconds, 0.0);
  }
}

TEST(RhoCalibratorTest, HiddenCostGrowsWithContext) {
  // The paper's Eq. 6 rationale: the extra hidden-cache cost is linear in
  // context length, so longer contexts must show a larger KV-vs-hidden gap.
  auto result = CalibrateRho(ModelConfig::Tiny(), 42, {4, 96}, 3);
  ASSERT_TRUE(result.ok());
  const auto& pts = result->points;
  const double gap_short =
      pts[0].hidden_seconds - pts[0].kv_seconds;
  const double gap_long = pts[1].hidden_seconds - pts[1].kv_seconds;
  EXPECT_GT(gap_long, gap_short);
}

TEST(RhoCalibratorTest, InputValidation) {
  EXPECT_TRUE(
      CalibrateRho(ModelConfig::Tiny(), 1, {}).status().IsInvalidArgument());
  EXPECT_TRUE(CalibrateRho(ModelConfig::Tiny(), 1, {0})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(CalibrateRho(ModelConfig::Tiny(), 1, {100000})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace aptserve
