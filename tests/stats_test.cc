#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace aptserve {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, MeanVarianceMinMax) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.Add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(SampleSetTest, QuantilesExact) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.Quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.P99(), 99.01, 1e-9);
  EXPECT_NEAR(s.Mean(), 50.5, 1e-9);
}

TEST(SampleSetTest, EmptyQuantileIsZero) {
  SampleSet s;
  EXPECT_EQ(s.Quantile(0.5), 0.0);
  EXPECT_EQ(s.Mean(), 0.0);
}

TEST(SampleSetTest, QuantileClampsRange) {
  SampleSet s;
  s.Add(1.0);
  s.Add(2.0);
  EXPECT_EQ(s.Quantile(-0.5), 1.0);
  EXPECT_EQ(s.Quantile(2.0), 2.0);
}

TEST(SampleSetTest, AddAfterQueryResorts) {
  SampleSet s;
  s.Add(10.0);
  EXPECT_EQ(s.Median(), 10.0);
  s.Add(0.0);
  EXPECT_EQ(s.Median(), 5.0);
}

TEST(SampleSetTest, CdfMonotoneAndComplete) {
  SampleSet s;
  for (int i = 0; i < 1000; ++i) s.Add(1000 - i);
  auto cdf = s.Cdf(50);
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_LE(cdf.size(), 60u);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);   // clamps to first bucket
  h.Add(0.5);
  h.Add(9.99);
  h.Add(50.0);   // clamps to last bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[9], 2u);
  EXPECT_DOUBLE_EQ(h.BucketLow(3), 3.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(3), 4.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  // Chan et al. parallel combine: splitting a sample set arbitrarily and
  // merging must reproduce the sequential accumulator (to fp tolerance).
  RunningStat all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(0.37 * i) * 5.0 + 2.0;
    all.Add(v);
    (i < 37 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmptyIsIdentity) {
  RunningStat s, empty;
  s.Add(1.0);
  s.Add(3.0);
  s.Merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  empty.Merge(s);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(LatencyHistogramTest, QuantilesBracketSamples) {
  // 1..1000 ms uniformly: log-bucket interpolation puts quantiles within
  // one bucket width (16/decade => ~15% geometric step) of the truth.
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(i * 1e-3);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.Quantile(0.5), 0.5, 0.1);
  EXPECT_NEAR(h.P99(), 0.99, 0.2);
  EXPECT_LE(h.P50(), h.P95());
  EXPECT_LE(h.P95(), h.P99());
  // Clamped to the exact observed extremes, not bucket edges.
  EXPECT_EQ(h.min(), 1e-3);
  EXPECT_EQ(h.max(), 1.0);
  EXPECT_GE(h.Quantile(0.0), h.min());
  EXPECT_LE(h.Quantile(1.0), h.max());
}

TEST(LatencyHistogramTest, OutOfRangeSamplesLandInEdgeBuckets) {
  LatencyHistogram h(1e-3, 1.0, 8);
  h.Add(1e-9);   // underflow bucket
  h.Add(100.0);  // overflow bucket
  h.Add(0.0);    // non-positive underflows too
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_LE(h.Quantile(0.01), 1e-3);
  EXPECT_GE(h.Quantile(0.99), 1.0);
}

TEST(LatencyHistogramTest, MergeMatchesUnion) {
  LatencyHistogram a, b, all;
  for (int i = 0; i < 200; ++i) {
    const double v = 1e-3 * (1 + (i * 37) % 500);
    all.Add(v);
    (i % 2 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  // Merged mean differs from sequential only by combine-order rounding;
  // bucket counts and min/max merge exactly, so quantiles are bit-equal.
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), all.Quantile(q)) << q;
  }
}

// Regression: equal bucket counts do NOT imply equal geometry. With
// min=1e-6 and 16 buckets/decade, max=9000 spans 9.954 decades and
// ceil(159.3) = 160 buckets — the same count as max=10000's exact 160 —
// so a merge gated only on (count, min, per_decade) would silently
// combine histograms whose overflow edges (and every bucket bound in
// between) disagree. The geometry check must include max_s_.
TEST(LatencyHistogramTest, MergeRejectsMismatchedUpperBoundSameBucketCount) {
  LatencyHistogram a(1e-6, 1e4, 16);
  LatencyHistogram b(1e-6, 9e3, 16);
  // Pin the premise: ceil produces identical bucket counts (the
  // constructor's formula), so the old count-only check could not tell
  // these histograms apart.
  ASSERT_EQ(std::ceil(std::log10(1e4 / 1e-6) * 16.0),
            std::ceil(std::log10(9e3 / 1e-6) * 16.0));
  a.Add(0.5);
  b.Add(0.5);
  EXPECT_DEATH(a.Merge(b), "different geometry");
}

TEST(LatencyHistogramTest, MergeAcceptsIdenticalGeometry) {
  LatencyHistogram a(1e-6, 9e3, 16);
  LatencyHistogram b(1e-6, 9e3, 16);
  a.Add(0.5);
  b.Add(2.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
}

TEST(LatencyHistogramTest, EmptyQuantileIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, AsciiRendering) {
  Histogram h(0.0, 4.0, 4);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.6);
  std::string art = h.ToAscii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  Histogram empty(0.0, 1.0, 2);
  EXPECT_EQ(empty.ToAscii(), "(empty)\n");
}

}  // namespace
}  // namespace aptserve
