#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace aptserve {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, MeanVarianceMinMax) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.Add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(SampleSetTest, QuantilesExact) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.Quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.P99(), 99.01, 1e-9);
  EXPECT_NEAR(s.Mean(), 50.5, 1e-9);
}

TEST(SampleSetTest, EmptyQuantileIsZero) {
  SampleSet s;
  EXPECT_EQ(s.Quantile(0.5), 0.0);
  EXPECT_EQ(s.Mean(), 0.0);
}

TEST(SampleSetTest, QuantileClampsRange) {
  SampleSet s;
  s.Add(1.0);
  s.Add(2.0);
  EXPECT_EQ(s.Quantile(-0.5), 1.0);
  EXPECT_EQ(s.Quantile(2.0), 2.0);
}

TEST(SampleSetTest, AddAfterQueryResorts) {
  SampleSet s;
  s.Add(10.0);
  EXPECT_EQ(s.Median(), 10.0);
  s.Add(0.0);
  EXPECT_EQ(s.Median(), 5.0);
}

TEST(SampleSetTest, CdfMonotoneAndComplete) {
  SampleSet s;
  for (int i = 0; i < 1000; ++i) s.Add(1000 - i);
  auto cdf = s.Cdf(50);
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_LE(cdf.size(), 60u);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);   // clamps to first bucket
  h.Add(0.5);
  h.Add(9.99);
  h.Add(50.0);   // clamps to last bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[9], 2u);
  EXPECT_DOUBLE_EQ(h.BucketLow(3), 3.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(3), 4.0);
}

TEST(HistogramTest, AsciiRendering) {
  Histogram h(0.0, 4.0, 4);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.6);
  std::string art = h.ToAscii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  Histogram empty(0.0, 1.0, 2);
  EXPECT_EQ(empty.ToAscii(), "(empty)\n");
}

}  // namespace
}  // namespace aptserve
