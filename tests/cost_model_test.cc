#include "sim/cost_model.h"

#include <gtest/gtest.h>

namespace aptserve {
namespace {

CostModel Make() {
  const ModelSpec m = ModelSpec::Opt13B();
  return CostModel(m, ClusterSpec::ForModel(m));
}

TEST(CostModelTest, EmptyBatchCostsOverheadOnly) {
  CostModel cm = Make();
  EXPECT_DOUBLE_EQ(cm.IterationSeconds({}), cm.overhead());
}

TEST(CostModelTest, DecodeIsMemoryBoundAtSmallBatch) {
  CostModel cm = Make();
  BatchWorkload w;
  w.decode_reqs = 1;
  w.decode_kv_context_tokens = 100;
  // Dominated by streaming 26GB of weights.
  const double weights_time =
      cm.model().WeightBytes() / cm.cluster().EffectiveBandwidth();
  EXPECT_NEAR(cm.IterationSeconds(w), weights_time + cm.overhead(), 2e-3);
}

TEST(CostModelTest, DecodeLatencyGrowsWithContext) {
  CostModel cm = Make();
  BatchWorkload small, large;
  small.decode_reqs = large.decode_reqs = 32;
  small.decode_kv_context_tokens = 32 * 100;
  large.decode_kv_context_tokens = 32 * 1500;
  EXPECT_GT(cm.IterationSeconds(large), cm.IterationSeconds(small));
}

TEST(CostModelTest, HiddenContextReadsHalfTheBytesButAddsCompute) {
  CostModel cm = Make();
  BatchWorkload kv, hidden;
  kv.decode_reqs = hidden.decode_reqs = 8;
  kv.decode_kv_context_tokens = 8 * 50;
  hidden.decode_hidden_context_tokens = 8 * 50;
  // With a small batch x short contexts the iteration stays memory bound,
  // and hidden reads half the cache bytes -> not slower.
  EXPECT_LE(cm.IterationSeconds(hidden), cm.IterationSeconds(kv) + 1e-9);

  // At large batch x context, the K/V re-projection compute dominates and
  // hidden becomes slower — the cost the scheduler's penalty term models.
  BatchWorkload kv_big, hid_big;
  kv_big.decode_reqs = hid_big.decode_reqs = 200;
  kv_big.decode_kv_context_tokens = 200LL * 1500;
  hid_big.decode_hidden_context_tokens = 200LL * 1500;
  EXPECT_GT(cm.IterationSeconds(hid_big), cm.IterationSeconds(kv_big));
}

TEST(CostModelTest, PrefillComputeBoundAndSuperlinear) {
  CostModel cm = Make();
  auto prefill = [&](int64_t n) {
    BatchWorkload w;
    w.prefill_tokens = n;
    w.prefill_attend_tokens = n * (n + 1) / 2;
    return cm.IterationSeconds(w);
  };
  const double t512 = prefill(512);
  const double t1024 = prefill(1024);
  EXPECT_GT(t1024, 1.9 * t512);  // at least linear growth
  // Compute side dominates: flops time > bytes time for a 512-token prefill.
  const double flops_s = (cm.model().FlopsPerToken() * 512 +
                          cm.model().AttentionFlopsPerContextToken() * 512 *
                              513 / 2) /
                         cm.cluster().EffectiveFlops();
  EXPECT_NEAR(t512, flops_s + cm.overhead(), 1e-3);
}

TEST(CostModelTest, PaperDecodeLatencyBallpark) {
  // §6.6: "a single decode iteration with 50 requests using OPT-13B takes
  // approximately 120 ms". Our calibration should land within a loose
  // factor (same order of magnitude, tens of ms).
  CostModel cm = Make();
  BatchWorkload w;
  w.decode_reqs = 50;
  w.decode_kv_context_tokens = 50LL * 500;
  const double t = cm.IterationSeconds(w);
  EXPECT_GT(t, 0.02);
  EXPECT_LT(t, 0.2);
}

TEST(CostModelTest, RhoMatchesRecomputeRate) {
  CostModel cm = Make();
  EXPECT_DOUBLE_EQ(cm.RhoSecondsPerToken(),
                   cm.model().HiddenRecomputeFlopsPerToken() /
                       cm.cluster().EffectiveFlops());
  EXPECT_GT(cm.RhoSecondsPerToken(), 0);
  EXPECT_LT(cm.RhoSecondsPerToken(), 1e-3);  // tens of microseconds
}

TEST(CostModelTest, WorkloadAccumulation) {
  BatchWorkload a, b;
  a.prefill_tokens = 10;
  a.decode_reqs = 2;
  b.prefill_tokens = 5;
  b.decode_hidden_context_tokens = 100;
  a += b;
  EXPECT_EQ(a.prefill_tokens, 15);
  EXPECT_EQ(a.decode_reqs, 2);
  EXPECT_EQ(a.decode_hidden_context_tokens, 100);
  EXPECT_FALSE(a.Empty());
  EXPECT_TRUE(BatchWorkload{}.Empty());
}

TEST(CostModelTest, TensorParallelSpeedsUpLargeModels) {
  const ModelSpec m = ModelSpec::Opt30B();
  ClusterSpec two = ClusterSpec::ForModel(m);
  ClusterSpec fake_one = two;
  fake_one.n_gpus = 1;  // hypothetical single-GPU run (memory aside)
  CostModel cm2(m, two), cm1(m, fake_one);
  BatchWorkload w;
  w.decode_reqs = 20;
  w.decode_kv_context_tokens = 20 * 400;
  EXPECT_LT(cm2.IterationSeconds(w), cm1.IterationSeconds(w));
}

}  // namespace
}  // namespace aptserve
