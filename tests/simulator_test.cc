// End-to-end tests of the iteration-level serving simulator: completion,
// metric sanity, memory-pressure behaviour (preemption / batch-limit
// accounting) and determinism, across all scheduler implementations.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/fastgen_scheduler.h"
#include "baselines/fcfs_scheduler.h"
#include "baselines/random_scheduler.h"
#include "baselines/sarathi_scheduler.h"
#include "core/apt_sarathi_scheduler.h"
#include "core/apt_scheduler.h"
#include "workload/trace.h"

namespace aptserve {
namespace {

CostModel MakeCostModel() {
  const ModelSpec model = ModelSpec::Opt13B();
  const ClusterSpec cluster = ClusterSpec::ForModel(model);
  return CostModel(model, cluster);
}

std::vector<Request> SmallTrace(double rate, int32_t n = 60,
                                uint64_t seed = 3) {
  TraceConfig cfg;
  cfg.profile = DatasetProfile::ShareGpt();
  cfg.num_requests = n;
  cfg.rate_per_sec = rate;
  cfg.seed = seed;
  auto trace = BuildTrace(cfg);
  EXPECT_TRUE(trace.ok()) << trace.status().ToString();
  return *trace;
}

std::unique_ptr<Scheduler> MakeScheduler(const std::string& kind,
                                         const SloSpec& slo) {
  if (kind == "fcfs") return std::make_unique<FcfsScheduler>();
  if (kind == "random") return std::make_unique<RandomScheduler>();
  if (kind == "sarathi") return std::make_unique<SarathiScheduler>();
  if (kind == "fastgen") return std::make_unique<FastGenScheduler>();
  if (kind == "apt") {
    AptConfig c;
    c.slo = slo;
    return std::make_unique<AptScheduler>(c);
  }
  AptSarathiConfig c;
  c.slo = slo;
  return std::make_unique<AptSarathiScheduler>(c);
}

class AllSchedulersTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllSchedulersTest, CompletesLightLoad) {
  SloSpec slo{1.0, 1.0};
  auto sched = MakeScheduler(GetParam(), slo);
  Simulator sim(MakeCostModel(), SimulatorConfig{});
  auto result = sim.Run(SmallTrace(0.5), sched.get(), slo);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Light load: everything should finish and most requests meet SLOs.
  EXPECT_EQ(result->report.ttfts.count(), 60u);
  EXPECT_GT(result->report.slo_attainment, 0.8)
      << "scheduler " << sched->name();
}

TEST_P(AllSchedulersTest, CompletesHeavyLoad) {
  SloSpec slo{1.0, 1.0};
  auto sched = MakeScheduler(GetParam(), slo);
  Simulator sim(MakeCostModel(), SimulatorConfig{});
  auto result = sim.Run(SmallTrace(20.0, 120), sched.get(), slo);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->report.ttfts.count(), 120u);
  // Under heavy load the serving time must exceed the arrival span.
  EXPECT_GT(result->report.total_serving_time, 120 / 20.0);
}

TEST_P(AllSchedulersTest, DeterministicAcrossRuns) {
  SloSpec slo{1.0, 1.0};
  auto trace = SmallTrace(2.0, 40);
  auto s1 = MakeScheduler(GetParam(), slo);
  auto s2 = MakeScheduler(GetParam(), slo);
  Simulator sim(MakeCostModel(), SimulatorConfig{});
  auto r1 = sim.Run(trace, s1.get(), slo);
  auto r2 = sim.Run(trace, s2.get(), slo);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_DOUBLE_EQ(r1->report.total_serving_time,
                   r2->report.total_serving_time);
  EXPECT_EQ(r1->report.iterations, r2->report.iterations);
  EXPECT_DOUBLE_EQ(r1->report.slo_attainment, r2->report.slo_attainment);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, AllSchedulersTest,
                         ::testing::Values("fcfs", "random", "sarathi",
                                           "fastgen", "apt", "apt_s"),
                         [](const auto& info) { return info.param; });

TEST(SimulatorTest, RejectsOversizedRequest) {
  SloSpec slo{1.0, 1.0};
  FcfsScheduler sched;
  SimulatorConfig cfg;
  cfg.pool_blocks_override = 4;  // tiny pool
  Simulator sim(MakeCostModel(), cfg);
  Request r;
  r.id = 0;
  r.prompt_len = 1000;  // needs 63 hidden blocks > 4
  r.output_len = 10;
  r.arrival = 0.0;
  auto result = sim.Run({r}, &sched, slo);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(SimulatorTest, RejectsNonPositiveLengths) {
  SloSpec slo{1.0, 1.0};
  FcfsScheduler sched;
  Simulator sim(MakeCostModel(), SimulatorConfig{});
  Request r;
  r.id = 0;
  r.prompt_len = 0;
  r.output_len = 5;
  auto result = sim.Run({r}, &sched, slo);
  EXPECT_FALSE(result.ok());
}

TEST(SimulatorTest, EmptyTraceYieldsEmptyReport) {
  SloSpec slo{1.0, 1.0};
  FcfsScheduler sched;
  Simulator sim(MakeCostModel(), SimulatorConfig{});
  auto result = sim.Run({}, &sched, slo);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.iterations, 0);
}

TEST(SimulatorTest, SingleRequestLatencyBreakdown) {
  // One request alone in the system: TTFT ~= prefill cost, and every TBT
  // ~= one decode iteration.
  SloSpec slo{10.0, 10.0};
  FcfsScheduler sched;
  CostModel cm = MakeCostModel();
  Simulator sim(cm, SimulatorConfig{});
  Request r;
  r.id = 0;
  r.prompt_len = 512;
  r.output_len = 20;
  r.arrival = 0.0;
  auto result = sim.Run({r}, &sched, slo);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& rep = result->report;
  EXPECT_EQ(rep.ttfts.count(), 1u);

  BatchWorkload prefill;
  prefill.prefill_tokens = 512;
  prefill.prefill_attend_tokens = 512LL * 513 / 2;
  EXPECT_NEAR(rep.ttfts.Max(), cm.IterationSeconds(prefill), 1e-9);
  // 19 decode iterations follow (the 20th token arrives at prefill end).
  EXPECT_EQ(rep.iterations, 1 + 19);
}

TEST(SimulatorTest, MemoryPressureTriggersPreemptionOrBatchLimit) {
  SloSpec slo{1.0, 1.0};
  FcfsScheduler sched;
  SimulatorConfig cfg;
  cfg.pool_blocks_override = 200;  // deliberately small pool
  Simulator sim(MakeCostModel(), cfg);
  auto result = sim.Run(SmallTrace(8.0, 80), &sched, slo);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->report.batch_limit_time_ratio, 0.0);
  EXPECT_LE(result->peak_blocks, 200);
}

TEST(SimulatorTest, PoolBlocksDerivedFromClusterMemory) {
  CostModel cm = MakeCostModel();
  Simulator sim(cm, SimulatorConfig{});
  auto blocks = sim.DerivePoolBlocks();
  ASSERT_TRUE(blocks.ok());
  // OPT-13B on A100-40G: (40e9*0.9 - 26e9) / (16 * 40*5120*2) ~= 1526.
  EXPECT_GT(*blocks, 1000);
  EXPECT_LT(*blocks, 2500);
}

}  // namespace
}  // namespace aptserve
