// Sweep harness (bench/sweep/): matrix expansion, the --resume contract
// (skip on matching meta.json, rerun on any config change), run-directory
// layout, runs.csv row conservation, and report rendering.
#include "bench/sweep/config.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>

#include "bench/sweep/collect.h"
#include "bench/sweep/fs_util.h"
#include "bench/sweep/report.h"
#include "bench/sweep/runner.h"
#include "common/json.h"

namespace aptserve {
namespace sweep {
namespace {

SweepConfig TinyConfig(const std::string& out_root) {
  SweepConfig config;
  config.name = "tiny";
  config.out_root = out_root;
  config.jobs = 2;
  config.base.num_requests = 8;
  config.base.n_instances = 2;
  config.matrix.schedulers = {"vLLM", "Apt"};
  config.matrix.router_policies = {"round-robin"};
  config.matrix.admission = {"none"};
  config.matrix.prefix_sharing = {false};
  config.matrix.seeds = {7};
  config.matrix.rates = {2.0};
  return config;
}

SweepOptions Quiet() {
  SweepOptions options;
  options.verbose = false;
  return options;
}

class SweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/aptserve_sweep_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    out_root_ = tmpl;
  }
  void TearDown() override {
    // Best-effort cleanup; test dirs are tiny.
    const std::string cmd = "rm -rf '" + out_root_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }
  std::string out_root_;
};

TEST(SweepConfigTest, ExpandMatrixIsFullCartesianProductInStableOrder) {
  SweepConfig config = TinyConfig("unused");
  config.matrix.schedulers = {"vLLM", "Apt"};
  config.matrix.router_policies = {"round-robin", "least-loaded"};
  config.matrix.admission = {"none", "reject"};
  config.matrix.prefix_sharing = {false, true};
  config.matrix.seeds = {1, 2, 3};
  config.matrix.rates = {0.5, 1.0};
  Ablation no_hedge;
  no_hedge.name = "baseline";
  no_hedge.overrides = json::JsonValue::Object();
  config.ablations.push_back(no_hedge);
  Ablation bigger;
  bigger.name = "more-instances";
  bigger.overrides = json::JsonValue::Object();
  bigger.overrides.Set("n_instances", json::JsonValue::Int(3));
  config.ablations.push_back(bigger);

  auto cells = ExpandMatrix(config);
  ASSERT_TRUE(cells.ok()) << cells.status().ToString();
  EXPECT_EQ(cells->size(), 2u * 2 * 2 * 2 * 2 * 3 * 2);
  // Deterministic order: seed is the innermost axis.
  EXPECT_EQ((*cells)[0].seed, 1u);
  EXPECT_EQ((*cells)[1].seed, 2u);
  EXPECT_EQ((*cells)[2].seed, 3u);
  // The ablation override resolved into the cell params.
  EXPECT_EQ(cells->front().params.n_instances, 2);
  EXPECT_EQ(cells->back().params.n_instances, 3);
  EXPECT_EQ(cells->back().ablation, "more-instances");
  // Run ids are unique and filesystem-safe.
  std::set<std::string> ids;
  for (const RunCell& cell : *cells) {
    EXPECT_TRUE(ids.insert(cell.run_id).second) << cell.run_id;
    EXPECT_EQ(cell.run_id.find('/'), std::string::npos);
    EXPECT_EQ(cell.run_id.find('*'), std::string::npos) << cell.run_id;
  }
}

TEST(SweepConfigTest, StrictParsingRejectsTyposAndBadNames) {
  const auto expect_bad = [](const std::string& text) {
    auto doc = json::ParseJson(text);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_FALSE(ParseSweepConfig(*doc).ok()) << text;
  };
  expect_bad(R"({"name":"x","out_root":"o","basee":{}})");
  expect_bad(R"({"name":"x","out_root":"o","base":{"num_request":4}})");
  expect_bad(R"({"name":"x","out_root":"o","matrix":{"schedulers":["nope"]}})");
  expect_bad(
      R"({"name":"x","out_root":"o","matrix":{"router_policies":["rr"]}})");
  expect_bad(R"({"name":"x","out_root":"o","matrix":{"rates":[]}})");
  expect_bad(R"({"name":"x","out_root":"o","base":{"workload":"zipf"}})");
  expect_bad(
      R"({"name":"x","out_root":"o","ablations":[{"name":"a","extra":1}]})");

  auto good = json::ParseJson(
      R"({"name":"x","out_root":"o","matrix":{"schedulers":["Apt"]}})");
  ASSERT_TRUE(good.ok());
  auto config = ParseSweepConfig(*good);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  // A default baseline ablation materializes when none are given.
  ASSERT_EQ(config->ablations.size(), 1u);
  EXPECT_EQ(config->ablations[0].name, "baseline");
}

TEST_F(SweepTest, RunsProduceMetaAndResultPerCell) {
  const SweepConfig config = TinyConfig(out_root_);
  auto run = RunSweep(config, Quiet());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->planned, 2);
  EXPECT_EQ(run->executed, 2);
  EXPECT_EQ(run->skipped, 0);
  EXPECT_EQ(run->failed, 0);

  auto cells = ExpandMatrix(config);
  ASSERT_TRUE(cells.ok());
  for (const RunCell& cell : *cells) {
    const std::string run_dir = run->exp_dir + "/runs/" + cell.run_id;
    auto meta = json::ParseJsonFile(run_dir + "/meta.json");
    ASSERT_TRUE(meta.ok()) << run_dir;
    // The recorded cell is exactly the expansion's resume key, and the
    // environment stamp is present.
    const json::JsonValue* recorded = meta->Find("cell");
    ASSERT_NE(recorded, nullptr);
    EXPECT_TRUE(*recorded == cell.Key());
    ASSERT_NE(meta->Find("environment"), nullptr);
    EXPECT_NE(meta->Find("environment")->GetString("runtime", ""), "");

    auto result = json::ParseJsonFile(run_dir + "/result.json");
    ASSERT_TRUE(result.ok()) << run_dir;
    EXPECT_EQ(result->GetInt("requests", -1), 8);
    EXPECT_GT(result->GetNumber("total_serving_time_s", 0.0), 0.0);
    ASSERT_NE(result->Find("ttft_cdf"), nullptr);
    EXPECT_FALSE(result->Find("ttft_cdf")->items().empty());
  }
}

TEST_F(SweepTest, ResumeSkipsCellsWhoseMetaMatches) {
  const SweepConfig config = TinyConfig(out_root_);
  auto first = RunSweep(config, Quiet());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->executed, 2);

  SweepOptions resume = Quiet();
  resume.resume = true;
  auto second = RunSweep(config, resume);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->executed, 0);
  EXPECT_EQ(second->skipped, 2);
  EXPECT_EQ(second->failed, 0);
}

TEST_F(SweepTest, ResumeRerunsCellsWhenConfigChanges) {
  SweepConfig config = TinyConfig(out_root_);
  auto first = RunSweep(config, Quiet());
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Any resolved-params change invalidates every cell it touches — here
  // all of them (the trace gets longer).
  config.base.num_requests = 12;
  SweepOptions resume = Quiet();
  resume.resume = true;
  auto second = RunSweep(config, resume);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->executed, 2);
  EXPECT_EQ(second->skipped, 0);

  // And without resume, everything always reruns.
  auto third = RunSweep(config, Quiet());
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(third->executed, 2);
}

TEST_F(SweepTest, ResumeRerunsCellsMissingResults) {
  const SweepConfig config = TinyConfig(out_root_);
  auto first = RunSweep(config, Quiet());
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Simulate a cell that died after writing meta.json: stale, must rerun.
  const std::string victim =
      first->exp_dir + "/runs/" + first->outcomes[0].run_id + "/result.json";
  ASSERT_EQ(std::remove(victim.c_str()), 0);

  SweepOptions resume = Quiet();
  resume.resume = true;
  auto second = RunSweep(config, resume);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->executed, 1);
  EXPECT_EQ(second->skipped, 1);
}

TEST_F(SweepTest, RunsCsvConservesOneRowPerFinishedCell) {
  const SweepConfig config = TinyConfig(out_root_);
  auto run = RunSweep(config, Quiet());
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  auto runs = CollectAndWriteCsv(run->exp_dir);
  ASSERT_TRUE(runs.ok()) << runs.status().ToString();
  EXPECT_EQ(static_cast<int64_t>(runs->size()), run->executed);

  std::ifstream csv(run->exp_dir + "/aggregate/runs.csv");
  ASSERT_TRUE(csv.good());
  std::string line;
  ASSERT_TRUE(std::getline(csv, line));
  EXPECT_EQ(line, RunsCsvHeader());
  const size_t header_cols = 1 + std::count(line.begin(), line.end(), ',');
  int64_t rows = 0;
  while (std::getline(csv, line)) {
    if (line.empty()) continue;
    ++rows;
    EXPECT_EQ(1 + std::count(line.begin(), line.end(), ','), header_cols)
        << line;
  }
  EXPECT_EQ(rows, run->executed);
}

TEST_F(SweepTest, ReportIsSelfContainedHtmlWithSvgPlots) {
  const SweepConfig config = TinyConfig(out_root_);
  auto run = RunSweep(config, Quiet());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto runs = CollectRuns(run->exp_dir);
  ASSERT_TRUE(runs.ok()) << runs.status().ToString();

  const std::string html = RenderReportHtml(config.name, *runs);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("SLO attainment vs. request rate"), std::string::npos);
  EXPECT_NE(html.find("TTFT CDF"), std::string::npos);
  // Both schedulers appear as series.
  EXPECT_NE(html.find("Apt"), std::string::npos);
  EXPECT_NE(html.find("vLLM"), std::string::npos);
  // Self-contained: no external scripts or stylesheets.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("<link"), std::string::npos);

  ASSERT_TRUE(WriteReport(config.name, *runs, run->exp_dir).ok());
  EXPECT_TRUE(PathExists(run->exp_dir + "/report/index.html"));
}

TEST_F(SweepTest, DryRunExecutesNothingAndTouchesNoDisk) {
  const SweepConfig config = TinyConfig(out_root_);
  SweepOptions dry = Quiet();
  dry.dry_run = true;
  auto run = RunSweep(config, dry);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->planned, 2);
  EXPECT_EQ(run->executed, 0);
  EXPECT_FALSE(PathExists(run->exp_dir + "/runs"));
}

TEST(SweepSchedulerTest, MakeSchedulerByNameCoversBenchNamesAndFailsClosed) {
  const SloSpec slo{1.0, 1.0};
  for (const char* kind : {"vLLM", "Random", "Sarathi", "FastGen",
                           "FCFS-hybrid", "Apt", "Apt*", "Apt-KVonly",
                           "Apt-S"}) {
    auto sched = MakeSchedulerByName(kind, slo);
    ASSERT_TRUE(sched.ok()) << kind;
    EXPECT_NE(sched->get(), nullptr) << kind;
  }
  EXPECT_FALSE(MakeSchedulerByName("Apt-Typo", slo).ok());
}

TEST(SweepConfigTest, CommittedExampleConfigsParseAndExpand) {
  const std::string root = APTSERVE_SOURCE_DIR;
  for (const char* name : {"smoke", "paper_table"}) {
    auto config = LoadSweepConfigFile(root + "/bench/experiments/" + name +
                                      ".json");
    ASSERT_TRUE(config.ok()) << name << ": " << config.status().ToString();
    auto cells = ExpandMatrix(*config);
    ASSERT_TRUE(cells.ok()) << name << ": " << cells.status().ToString();
    EXPECT_FALSE(cells->empty()) << name;
  }
  // The smoke config is the CI two-cell matrix; pin its size so the CI
  // resume assertion ("executed 0 of 2") stays meaningful.
  auto smoke = LoadSweepConfigFile(root + "/bench/experiments/smoke.json");
  ASSERT_TRUE(smoke.ok());
  auto cells = ExpandMatrix(*smoke);
  ASSERT_TRUE(cells.ok());
  EXPECT_EQ(cells->size(), 2u);
}

}  // namespace
}  // namespace sweep
}  // namespace aptserve
