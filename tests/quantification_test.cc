#include "core/quantification.h"

#include <gtest/gtest.h>

namespace aptserve {
namespace {

CandidateInfo Cand(double pending, int32_t blocks, int32_t tokens,
                   bool violated = false) {
  CandidateInfo c;
  c.id = 1;
  c.pending_s = pending;
  c.m_blocks = blocks;
  c.m_tokens = tokens;
  c.slo_violated = violated;
  return c;
}

TEST(QuantificationTest, ValueMatchesEq5) {
  QuantificationConfig qc;
  qc.rho_seconds_per_token = 1e-5;
  qc.num_requests_in_system = 100;
  QuantificationModel m(qc);
  CandidateInfo c = Cand(2.0, 10, 500);
  // g(kv) = p; g(hidden) = p - N * rho * m_tokens = 2.0 - 100*1e-5*500.
  EXPECT_DOUBLE_EQ(m.Value(c, false), 2.0);
  EXPECT_DOUBLE_EQ(m.Value(c, true), 2.0 - 0.5);
  EXPECT_DOUBLE_EQ(m.HiddenPenalty(c), 0.5);
}

TEST(QuantificationTest, HiddenProfitabilityThreshold) {
  QuantificationConfig qc;
  qc.rho_seconds_per_token = 1e-5;
  qc.num_requests_in_system = 100;
  QuantificationModel m(qc);
  // Threshold: p >= 2 * N * rho * tokens = 2 * 0.5 = 1.0.
  EXPECT_TRUE(m.HiddenProfitable(Cand(1.0, 10, 500)));
  EXPECT_TRUE(m.HiddenProfitable(Cand(5.0, 10, 500)));
  EXPECT_FALSE(m.HiddenProfitable(Cand(0.99, 10, 500)));
}

TEST(QuantificationTest, SloFallbackDemotesToEpsilon) {
  QuantificationConfig qc;
  qc.epsilon = 1e-6;
  QuantificationModel m(qc);
  CandidateInfo c = Cand(10.0, 4, 100, /*violated=*/true);
  EXPECT_DOUBLE_EQ(m.EffectivePending(c), 1e-6);
  EXPECT_DOUBLE_EQ(m.Value(c, false), 1e-6);
}

TEST(QuantificationTest, DecayVariantScalesInsteadOfFlooring) {
  QuantificationConfig qc;
  qc.violation_decay = 0.4;  // the Apt-Serve* configuration of §6.6
  QuantificationModel m(qc);
  CandidateInfo c = Cand(10.0, 4, 100, /*violated=*/true);
  EXPECT_DOUBLE_EQ(m.EffectivePending(c), 4.0);
}

TEST(QuantificationTest, NonViolatedUnaffectedByFallback) {
  QuantificationConfig qc;
  qc.violation_decay = 0.4;
  QuantificationModel m(qc);
  EXPECT_DOUBLE_EQ(m.EffectivePending(Cand(10.0, 4, 100, false)), 10.0);
}

TEST(QuantificationTest, ZeroRhoMakesHiddenFree) {
  QuantificationConfig qc;
  qc.rho_seconds_per_token = 0.0;
  QuantificationModel m(qc);
  CandidateInfo c = Cand(3.0, 10, 500);
  EXPECT_DOUBLE_EQ(m.Value(c, true), 3.0);
  EXPECT_TRUE(m.HiddenProfitable(c));
}

}  // namespace
}  // namespace aptserve
