// Hierarchical fleet-of-fleets front tier: consistent-hash cell routing,
// load-summary fallback, cross-cell migration pricing, the affinity-mirror
// LRU cap, router decision-cost accounting, and the queue-wait span
// tracing on the router and cell tracks. The num_cells=1 configuration
// must be bit-identical to a flat fleet — that parity is what lets the
// hierarchy ship default-off. Seeded property checks honor
// APTSERVE_FUZZ_SEEDS like the other fuzz suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "baselines/fcfs_scheduler.h"
#include "common/env.h"
#include "common/rng.h"
#include "obs/chrome_trace.h"
#include "obs/trace_recorder.h"
#include "serve/cell_router.h"
#include "serve/cost_model_backend.h"
#include "serve/fleet_controller.h"
#include "serve/multi_instance.h"
#include "serve/router.h"
#include "workload/shared_prefix.h"

namespace aptserve {
namespace {

Request MakeReq(RequestId id, double arrival, std::vector<int32_t> tokens,
                int32_t output_len = 4) {
  Request r;
  r.id = id;
  r.arrival = arrival;
  r.prompt_len = static_cast<int32_t>(tokens.size());
  r.token_ids = std::move(tokens);
  r.output_len = output_len;
  return r;
}

std::vector<int32_t> Tokens(int32_t n, int32_t base) {
  std::vector<int32_t> t(n);
  for (int32_t i = 0; i < n; ++i) t[i] = base + i;
  return t;
}

std::vector<Request> ConversationTrace(uint64_t seed = 7) {
  SharedPrefixConfig cfg;
  cfg.system_prompt_len = 16;
  cfg.num_conversations = 6;
  cfg.turns_per_conversation = 4;
  cfg.tokens_per_turn = 12;
  cfg.output_len_mean = 4;
  cfg.vocab_size = 1000;
  cfg.think_time_s = 1.0;
  cfg.conversation_stagger_s = 0.2;
  cfg.seed = seed;
  auto trace = BuildSharedPrefixTrace(cfg);
  EXPECT_TRUE(trace.ok());
  return *trace;
}

BackendFactory CostBackends(const CostModel& cm) {
  return [&cm](int32_t) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
    CostModelBackend::Options o;
    o.block_size = 4;
    o.pool_blocks_override = 512;
    o.enable_prefix_sharing = true;
    o.token_vocab = 1000;
    APT_ASSIGN_OR_RETURN(std::unique_ptr<CostModelBackend> backend,
                         CostModelBackend::Create(cm, o));
    return std::unique_ptr<ExecutionBackend>(std::move(backend));
  };
}

SchedulerFactory Fcfs() {
  return [] { return std::make_unique<FcfsScheduler>(); };
}

// ---- Ring and key ----------------------------------------------------------

TEST(CellRouterTest, RingLookupIsDeterministicAndKeyIsPrefixStable) {
  CellRouterConfig cc;
  cc.num_cells = 8;
  CellRouter a(cc, /*block_size_fallback=*/4);
  CellRouter b(cc, 4);
  for (uint64_t key = 1; key < 2000; key += 37) {
    EXPECT_EQ(a.RingCell(key), b.RingCell(key));
  }

  // The key hashes only the leading full chunk(s): two prompts agreeing on
  // the first block map to the same key regardless of their tails.
  const Request turn1 = MakeReq(0, 0.0, Tokens(9, 100));
  Request turn2 = MakeReq(1, 1.0, Tokens(9, 100));
  turn2.token_ids.insert(turn2.token_ids.end(), {900, 901, 902, 903});
  turn2.prompt_len = static_cast<int32_t>(turn2.token_ids.size());
  EXPECT_NE(a.PrefixKey(turn1), 0u);
  EXPECT_EQ(a.PrefixKey(turn1), a.PrefixKey(turn2));
  EXPECT_NE(a.PrefixKey(turn1), a.PrefixKey(MakeReq(2, 2.0, Tokens(9, 500))));

  // No usable chunk: missing ids, or prompt too short for one full block
  // within the first prompt_len - 1 positions.
  Request no_ids;
  no_ids.prompt_len = 64;
  no_ids.arrival = 0.0;
  EXPECT_EQ(a.PrefixKey(no_ids), 0u);
  EXPECT_EQ(a.PrefixKey(MakeReq(3, 0.0, Tokens(4, 0))), 0u);  // usable = 3
  EXPECT_NE(a.PrefixKey(MakeReq(4, 0.0, Tokens(5, 0))), 0u);  // usable = 4
}

TEST(CellRouterTest, HashRoutingPinsAPrefixAndConservesStats) {
  CellRouterConfig cc;
  cc.num_cells = 4;
  CellRouter cells(cc, 4);
  const Request req = MakeReq(0, 0.0, Tokens(12, 42));
  const int32_t home = cells.RouteOne(req, 0.0);
  for (int i = 1; i < 10; ++i) {
    EXPECT_EQ(cells.RouteOne(req, 0.1 * i), home);
  }
  EXPECT_EQ(cells.stats().decisions, 10);
  EXPECT_EQ(cells.stats().hash_routed, 10);
  EXPECT_EQ(cells.stats().fallback_routed, 0);
  EXPECT_EQ(cells.stats().hash_routed + cells.stats().fallback_routed,
            cells.stats().decisions);
  EXPECT_GT(cells.stats().cell_probes, 0);
}

TEST(CellRouterTest, ImbalanceCapFallsBackToLeastLoadedCell) {
  CellRouterConfig cc;
  cc.num_cells = 4;
  cc.cell_max_imbalance_s = 5.0;
  CellRouter cells(cc, 4);
  const Request req = MakeReq(0, 0.0, Tokens(12, 42));
  const int32_t home = cells.RouteOne(req, 0.0);

  // Pile work onto the hashed cell until it exceeds the cap over the
  // (idle) minimum; the ring choice must yield to the least-loaded cell.
  cells.Commit(home, 0.0, /*service_seconds=*/40.0, /*cell_width=*/2);
  EXPECT_DOUBLE_EQ(cells.Outstanding(home, 0.0), 20.0);
  const int32_t spill = cells.RouteOne(req, 0.0);
  EXPECT_NE(spill, home);
  EXPECT_EQ(cells.stats().fallback_routed, 1);

  // The summary drains in virtual time; once under the cap the hashed
  // cell wins again.
  EXPECT_EQ(cells.RouteOne(req, 16.0), home);
  EXPECT_EQ(cells.stats().hash_routed + cells.stats().fallback_routed,
            cells.stats().decisions);
}

TEST(CellRouterTest, NoUsablePrefixRoutesToLeastLoadedCell) {
  CellRouterConfig cc;
  cc.num_cells = 3;
  CellRouter cells(cc, 4);
  cells.Commit(0, 0.0, 9.0, 1);
  cells.Commit(1, 0.0, 3.0, 1);
  Request no_ids;
  no_ids.prompt_len = 64;
  // Cell 2 is idle — lowest (busy_until, id) among live cells.
  EXPECT_EQ(cells.RouteOne(no_ids, 0.0), 2);
  EXPECT_EQ(cells.stats().fallback_routed, 1);
  cells.Commit(2, 0.0, 12.0, 1);
  EXPECT_EQ(cells.RouteOne(no_ids, 0.0), 1);  // 3s < 9s < 12s
}

TEST(CellRouterTest, SetLiveRetiresAndRestoresCells) {
  CellRouterConfig cc;
  cc.num_cells = 2;
  CellRouter cells(cc, 4);
  const Request req = MakeReq(0, 0.0, Tokens(12, 42));
  const int32_t home = cells.RouteOne(req, 0.0);
  cells.SetLive(home, false);
  EXPECT_NE(cells.RouteOne(req, 0.0), home);  // dead cells are unroutable
  cells.SetLive(home, true);
  EXPECT_EQ(cells.RouteOne(req, 0.0), home);
}

// ---- Cross-cell migration pricing ------------------------------------------

TEST(CellRouterTest, CrossCellMigrationIsPricedOnTheSlowerTier) {
  const ModelSpec m = ModelSpec::Opt13B();
  const ClusterSpec cluster = ClusterSpec::ForModel(m);
  const CostModel cm(m, cluster);
  const double bytes = 1.5e9;
  const double intra = cm.MigrationSeconds(bytes);
  const double cross = cm.MigrationSeconds(bytes, /*cross_cell=*/true);
  EXPECT_DOUBLE_EQ(intra, cm.MigrationSeconds(bytes, false));
  // Both tiers share the fixed per-migration overhead; only the bandwidth
  // term differs, so the delta isolates the cross-cell tier exactly.
  EXPECT_DOUBLE_EQ(cross - intra,
                   bytes / cluster.gpu.cross_cell_bandwidth -
                       bytes / cluster.gpu.interconnect_bandwidth);
  EXPECT_GT(cross, intra);
  EXPECT_EQ(cm.MigrationSeconds(0.0, true), 0.0);
}

// ---- Affinity-mirror LRU cap -----------------------------------------------

TEST(CellRouterTest, MirrorLruCapEvictsOldestAndReportsWitness) {
  RouterConfig rc;
  rc.n_instances = 1;
  rc.policy = RoutePolicy::kPrefixAffinity;
  rc.block_size = 4;
  rc.affinity_mirror_max_nodes = 8;
  const Router router(rc);
  RouterState state = router.MakeState();
  const std::vector<uint8_t> live = {1};
  bool best_effort = false;
  // 40 disjoint 3-chunk prompts: 120 would-be nodes against a cap of 8.
  for (int i = 0; i < 40; ++i) {
    const Request req = MakeReq(i, 0.1 * i, Tokens(13, 1000 * (i + 1)));
    ASSERT_EQ(router.RouteOne(req, i, live, &state, &best_effort), 0);
  }
  const RouteCostStats& cost = state.cost_stats();
  EXPECT_EQ(cost.decisions, 40);
  EXPECT_GT(cost.mirror_evictions, 0);
  EXPECT_LE(cost.mirror_nodes, 8);
  EXPECT_LE(cost.mirror_node_peak, 8);
  EXPECT_GT(cost.mirror_node_peak, 0);

  // The freshest prompt survived the cap: re-routing it still matches.
  RouterState probe = router.MakeState();
  // (fresh state: deterministic baseline walk count for one find miss)
  (void)probe;
  const int64_t walked_before = cost.mirror_nodes_walked;
  const Request again = MakeReq(40, 4.0, Tokens(13, 1000 * 40));
  router.RouteOne(again, 40, live, &state, &best_effort);
  // Single-live shortcut skips the scoring walk, so walked stays flat —
  // but the resident count still respects the cap after the new insert.
  EXPECT_EQ(state.cost_stats().mirror_nodes_walked, walked_before);
  EXPECT_LE(state.cost_stats().mirror_nodes, 8);
}

// ---- Decision-cost accounting ----------------------------------------------

TEST(CellRouterTest, ProbeAccountingIsExactPerPolicy) {
  std::vector<Request> reqs;
  for (int i = 0; i < 12; ++i) {
    reqs.push_back(MakeReq(i, 0.25 * i, Tokens(9, 10 * i)));
  }
  const std::vector<uint8_t> live = {1, 1, 1};

  {
    RouterConfig rc;
    rc.n_instances = 3;
    rc.policy = RoutePolicy::kRoundRobin;
    const Router router(rc);
    RouterState state = router.MakeState();
    bool be = false;
    for (size_t i = 0; i < reqs.size(); ++i) {
      router.RouteOne(reqs[i], i, live, &state, &be);
    }
    EXPECT_EQ(state.cost_stats().decisions, 12);
    EXPECT_EQ(state.cost_stats().instance_probes, 12);  // one read each
    EXPECT_EQ(state.cost_stats().mirror_nodes_walked, 0);
  }
  {
    RouterConfig rc;
    rc.n_instances = 3;
    rc.policy = RoutePolicy::kLeastOutstandingWork;
    const Router router(rc);
    RouterState state = router.MakeState();
    bool be = false;
    for (size_t i = 0; i < reqs.size(); ++i) {
      router.RouteOne(reqs[i], i, live, &state, &be);
    }
    EXPECT_EQ(state.cost_stats().instance_probes, 12 * 3);  // full scans
  }
  {
    RouterConfig rc;
    rc.n_instances = 3;
    rc.policy = RoutePolicy::kPrefixAffinity;
    rc.block_size = 4;
    const Router router(rc);
    RouterState state = router.MakeState();
    bool be = false;
    for (size_t i = 0; i < reqs.size(); ++i) {
      router.RouteOne(reqs[i], i, live, &state, &be);
    }
    // Fallback scan + candidate probes; every candidate walks >= 1 mirror
    // node (the root-level find) once mirrors are non-empty.
    EXPECT_EQ(state.cost_stats().instance_probes, 12 * 6);
    EXPECT_GT(state.cost_stats().mirror_nodes_walked, 0);
  }
}

// ---- num_cells = 1 parity and hierarchical serving -------------------------

TEST(CellRouterTest, NumCellsOneIsBitIdenticalToFlatFleet) {
  const ModelSpec m = ModelSpec::Opt13B();
  const CostModel cm(m, ClusterSpec::ForModel(m));
  const auto trace = ConversationTrace();
  RouterConfig rc;
  rc.n_instances = 3;
  rc.policy = RoutePolicy::kPrefixAffinity;
  rc.block_size = 4;
  const Router router(rc, &cm);

  MultiInstanceRunner flat(router, ServingLoopConfig{});
  CellRouterConfig one_cell;
  one_cell.num_cells = 1;
  MultiInstanceRunner hier(router, ServingLoopConfig{}, RuntimeConfig{},
                           one_cell);
  auto a = flat.Run(trace, Fcfs(), CostBackends(cm), SloSpec{5.0, 5.0});
  auto b = hier.Run(trace, Fcfs(), CostBackends(cm), SloSpec{5.0, 5.0});
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  EXPECT_EQ(a->requests_per_instance, b->requests_per_instance);
  EXPECT_EQ(a->combined.total_serving_time, b->combined.total_serving_time);
  EXPECT_EQ(a->combined.slo_attainment, b->combined.slo_attainment);
  EXPECT_EQ(a->combined.goodput_rps, b->combined.goodput_rps);
  EXPECT_EQ(a->combined.ttfts.samples(), b->combined.ttfts.samples());
  EXPECT_EQ(a->prefill_tokens_computed, b->prefill_tokens_computed);
  EXPECT_EQ(a->prefill_tokens_skipped, b->prefill_tokens_skipped);
  EXPECT_EQ(a->prefix.hits, b->prefix.hits);
  EXPECT_EQ(a->prefix.matched_tokens, b->prefix.matched_tokens);
  EXPECT_EQ(a->tokens_generated, b->tokens_generated);
  // Intra-cell probe counters agree; the degenerate front tier adds no
  // cell probes (its per-decision cost is literally zero reads).
  EXPECT_EQ(a->route_cost.instance_probes, b->route_cost.instance_probes);
  EXPECT_EQ(a->route_cost.mirror_nodes_walked,
            b->route_cost.mirror_nodes_walked);
  // The flat code path is taken verbatim — the front tier never even
  // instantiates, so every cell counter is zero.
  EXPECT_EQ(b->route_cost.cell_probes, 0);
  EXPECT_EQ(b->route_cost.cell_hash_routed, 0);
  EXPECT_EQ(b->route_cost.cell_fallback_routed, 0);
}

TEST(CellRouterTest, HierarchicalServeConservesRequestsAndFoldsCellStats) {
  const ModelSpec m = ModelSpec::Opt13B();
  const CostModel cm(m, ClusterSpec::ForModel(m));
  const auto trace = ConversationTrace();
  RouterConfig rc;
  rc.n_instances = 4;
  rc.policy = RoutePolicy::kPrefixAffinity;
  rc.block_size = 4;
  CellRouterConfig cc;
  cc.num_cells = 2;
  MultiInstanceRunner runner(Router(rc, &cm), ServingLoopConfig{},
                             RuntimeConfig{}, cc);
  auto r = runner.Run(trace, Fcfs(), CostBackends(cm), SloSpec{5.0, 5.0});
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  int64_t served = 0;
  for (int32_t c : r->requests_per_instance) served += c;
  EXPECT_EQ(served, static_cast<int64_t>(trace.size()));
  EXPECT_EQ(r->route_cost.decisions, static_cast<int64_t>(trace.size()));
  EXPECT_EQ(r->route_cost.cell_hash_routed + r->route_cost.cell_fallback_routed,
            r->route_cost.decisions);
  EXPECT_GT(r->route_cost.cell_probes, 0);
  EXPECT_GT(r->route_cost.instance_probes, 0);
}

TEST(CellRouterTest, FleetMetricsRecordInstanceCellMapAndPerCellSums) {
  const ModelSpec m = ModelSpec::Opt13B();
  const CostModel cm(m, ClusterSpec::ForModel(m));
  const auto trace = ConversationTrace();
  FleetConfig cfg;
  cfg.router.n_instances = 4;
  cfg.router.policy = RoutePolicy::kPrefixAffinity;
  cfg.router.block_size = 4;
  cfg.cells.num_cells = 2;
  FleetController controller(cfg, &cm);
  auto r = controller.Run(trace, Fcfs(), CostBackends(cm), SloSpec{5.0, 5.0});
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const FleetMetrics& fm = r->fleet;
  EXPECT_EQ(fm.num_cells, 2);
  ASSERT_EQ(fm.instance_cell.size(), r->serve.per_instance.size());
  // Initial spawns spread least-populated: 2 instances per cell.
  std::vector<int64_t> per_cell_requests(fm.num_cells, 0);
  std::vector<int64_t> per_cell_prefill(fm.num_cells, 0);
  std::vector<int32_t> width(fm.num_cells, 0);
  for (size_t i = 0; i < fm.instance_cell.size(); ++i) {
    const int32_t cell = fm.instance_cell[i];
    ASSERT_GE(cell, 0);
    ASSERT_LT(cell, fm.num_cells);
    ++width[cell];
    per_cell_requests[cell] += r->serve.requests_per_instance[i];
    per_cell_prefill[cell] += r->serve.prefill_computed_per_instance[i];
  }
  EXPECT_EQ(width, (std::vector<int32_t>{2, 2}));
  int64_t requests = 0, prefill = 0;
  for (int32_t c = 0; c < fm.num_cells; ++c) {
    requests += per_cell_requests[c];
    prefill += per_cell_prefill[c];
  }
  EXPECT_EQ(requests, static_cast<int64_t>(trace.size()));
  EXPECT_EQ(prefill, r->serve.prefill_tokens_computed);
  EXPECT_EQ(fm.cross_cell_migrations, 0);  // static fleet: no migration
}

// ---- Queue-wait spans on router and cell tracks ----------------------------

TEST(CellRouterTest, QueueWaitIsASpanOnRouterAndCellTracks) {
  const ModelSpec m = ModelSpec::Opt13B();
  const CostModel cm(m, ClusterSpec::ForModel(m));
  const auto trace = ConversationTrace();
  obs::TraceRecorder rec;
  FleetConfig cfg;
  cfg.router.n_instances = 4;
  cfg.router.policy = RoutePolicy::kPrefixAffinity;
  cfg.router.block_size = 4;
  cfg.cells.num_cells = 2;
  cfg.trace = &rec;
  FleetController controller(cfg, &cm);
  auto r = controller.Run(trace, Fcfs(), CostBackends(cm), SloSpec{5.0, 5.0});
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  int64_t router_spans = 0, cell_spans = 0, instants = 0;
  std::set<int32_t> cell_tracks;
  const auto events = rec.Flush();
  for (const obs::TraceEvent& e : events) {
    if (e.op != obs::TraceOp::kQueueWait) continue;
    if (e.kind == obs::EventKind::kInstant) ++instants;
    if (e.kind != obs::EventKind::kSpan) continue;
    if (e.track == obs::kRouterTrack) ++router_spans;
    if (e.track <= obs::kCellTrackBase) {
      ++cell_spans;
      cell_tracks.insert(e.track);
    }
  }
  EXPECT_EQ(instants, 0);  // the paired-instant encoding is retired
  EXPECT_GT(router_spans, 0);
  EXPECT_GT(cell_spans, 0);
  EXPECT_EQ(router_spans, static_cast<int64_t>(trace.size()));
  EXPECT_EQ(cell_spans, static_cast<int64_t>(trace.size()));
  EXPECT_LE(cell_tracks.size(), 2u);

  const std::string json = obs::ExportChromeTrace(events);
  auto stats = obs::ValidateChromeTrace(json);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->queue_wait_spans, 0);
}

TEST(CellRouterTest, ValidatorRejectsQueueWaitInstants) {
  obs::TraceRecorder rec;
  obs::TraceSink sink = rec.MakeSink(obs::kRouterTrack);
  sink.Instant(obs::TraceOp::kQueueWait, 1.0, 1);
  const std::string json = obs::ExportChromeTrace(rec.Flush());
  auto stats = obs::ValidateChromeTrace(json);
  EXPECT_FALSE(stats.ok());
}

// ---- Seeded properties -----------------------------------------------------

TEST(CellRouterTest, SeededRoutingIsDeterministicAndConserving) {
  for (uint64_t seed : env::FuzzSeedsFromEnv({11, 12, 13})) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    const int32_t num_cells = static_cast<int32_t>(rng.UniformInt(2, 9));
    CellRouterConfig cc;
    cc.num_cells = num_cells;
    cc.cell_max_imbalance_s = rng.Uniform(0.5, 20.0);
    CellRouter a(cc, 4);
    CellRouter b(cc, 4);

    std::vector<Request> reqs;
    double t = 0.0;
    for (int i = 0; i < 400; ++i) {
      t += rng.Uniform(0.0, 0.2);
      // A third of the stream has no usable prefix chunk.
      const bool bare = rng.Uniform() < 0.33;
      Request r = MakeReq(i, t,
                          bare ? std::vector<int32_t>{}
                               : Tokens(static_cast<int32_t>(
                                            rng.UniformInt(5, 40)),
                                        static_cast<int32_t>(
                                            rng.UniformInt(0, 50)) *
                                            64));
      if (bare) r.prompt_len = 16;
      reqs.push_back(std::move(r));
    }
    std::vector<int32_t> route_a, route_b;
    for (const Request& r : reqs) {
      const int32_t ca = a.RouteOne(r, r.arrival);
      const int32_t cb = b.RouteOne(r, r.arrival);
      ASSERT_GE(ca, 0);
      ASSERT_LT(ca, num_cells);
      const double service = rng.Uniform(0.01, 2.0);
      a.Commit(ca, r.arrival, service, 2);
      b.Commit(cb, r.arrival, service, 2);
      route_a.push_back(ca);
      route_b.push_back(cb);
    }
    EXPECT_EQ(route_a, route_b);  // same state evolution, same choices
    EXPECT_EQ(a.stats().decisions, 400);
    EXPECT_EQ(a.stats().hash_routed + a.stats().fallback_routed,
              a.stats().decisions);
    EXPECT_EQ(a.stats().cell_probes, b.stats().cell_probes);
  }
}

}  // namespace
}  // namespace aptserve
