// Cross-backend differential test harness: runs the SAME workload through
// the shared ServingLoop on both execution backends —
//   - CostModelBackend (analytic latencies over a standalone pool), and
//   - InferenceBackend (the real mini transformer, deterministic virtual
//     timing) —
// with matching cache geometry and token synthesis, and asserts the
// behaviors that must agree regardless of how iterations are priced:
// request completion order, prefill-skip accounting, and prefix-sharing
// hit accounting (PrefixStats). Latencies legitimately differ (modeled
// Opt-13B vs virtual per-item seconds); everything structural must not.
//
// Used by serving_loop_parity_test (cross-backend section),
// prefix_determinism_test, and the fleet router tests.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "baselines/fcfs_scheduler.h"
#include "engine/model_config.h"
#include "serve/cost_model_backend.h"
#include "serve/inference_backend.h"
#include "serve/serving_loop.h"
#include "sim/cost_model.h"
#include "workload/request.h"

namespace aptserve {
namespace testing_util {

struct DiffOptions {
  /// Shared cache geometry — identical on both backends so allocation
  /// behavior (and thus prefix matching) lines up.
  int32_t block_size = 4;
  int32_t pool_blocks = 256;
  bool enable_prefix_sharing = true;
  SloSpec slo{10.0, 10.0};
  ServingLoopConfig loop;
  /// Fresh scheduler per backend run (stateful schedulers must not be
  /// shared). Defaults to FCFS.
  std::function<std::unique_ptr<Scheduler>()> make_scheduler =
      [] { return std::make_unique<FcfsScheduler>(); };
  /// Engine side: the tiny real model, deterministic virtual timing.
  ModelConfig engine_model = ModelConfig::Tiny();
  uint64_t weight_seed = 42;
  /// Cost side: the analytic roofline model.
  ModelSpec cost_spec = ModelSpec::Opt13B();
};

struct BackendRun {
  ServingLoopResult result;
  /// Request ids ordered by (finish_time, id).
  std::vector<RequestId> completion_order;
};

struct BackendDiff {
  BackendRun cost;
  BackendRun engine;
};

inline std::vector<RequestId> CompletionOrder(const ServingLoopResult& r) {
  std::vector<std::pair<double, RequestId>> order;
  order.reserve(r.records.size());
  for (const auto& [id, rec] : r.records) {
    order.emplace_back(rec.finish_time, id);
  }
  std::sort(order.begin(), order.end());
  std::vector<RequestId> ids;
  ids.reserve(order.size());
  for (const auto& [t, id] : order) {
    (void)t;
    ids.push_back(id);
  }
  return ids;
}

/// Runs `trace` on both backends. The engine synthesizes prompt ids with
/// its default seed; the cost backend is pointed at the engine's vocab so
/// length-only traces expand identically on both sides.
inline StatusOr<BackendDiff> RunBackendDiff(const std::vector<Request>& trace,
                                            const DiffOptions& options) {
  BackendDiff diff;
  {
    CostModel cm(options.cost_spec, ClusterSpec::ForModel(options.cost_spec));
    CostModelBackend::Options o;
    o.block_size = options.block_size;
    o.pool_blocks_override = options.pool_blocks;
    o.enable_prefix_sharing = options.enable_prefix_sharing;
    o.token_vocab = options.engine_model.vocab_size;
    APT_ASSIGN_OR_RETURN(std::unique_ptr<CostModelBackend> backend,
                         CostModelBackend::Create(cm, o));
    auto scheduler = options.make_scheduler();
    ServingLoop loop(backend.get(), options.loop);
    APT_ASSIGN_OR_RETURN(diff.cost.result,
                         loop.Run(trace, scheduler.get(), options.slo));
    diff.cost.completion_order = CompletionOrder(diff.cost.result);
  }
  {
    InferenceBackendOptions o;
    o.virtual_timing = true;
    o.enable_prefix_sharing = options.enable_prefix_sharing;
    InferenceBackend backend(options.engine_model, options.weight_seed,
                             options.pool_blocks, options.block_size,
                             SamplingParams{}, o);
    auto scheduler = options.make_scheduler();
    ServingLoop loop(&backend, options.loop);
    APT_ASSIGN_OR_RETURN(diff.engine.result,
                         loop.Run(trace, scheduler.get(), options.slo));
    diff.engine.completion_order = CompletionOrder(diff.engine.result);
  }
  return diff;
}

/// The cross-backend agreement contract: completion order, prefill-skip
/// accounting, and every PrefixStats counter must match. Call after
/// RunBackendDiff on workloads whose arrival spacing dominates both
/// backends' iteration latencies (otherwise ordering could legitimately
/// diverge with the timeline).
inline void ExpectBackendAgreement(const BackendDiff& diff) {
  EXPECT_EQ(diff.cost.completion_order, diff.engine.completion_order)
      << "backends completed requests in different orders";

  const ServingLoopResult& c = diff.cost.result;
  const ServingLoopResult& e = diff.engine.result;
  EXPECT_EQ(c.tokens_generated, e.tokens_generated);
  EXPECT_EQ(c.prefill_tokens_skipped, e.prefill_tokens_skipped);
  EXPECT_EQ(c.prefill_tokens_computed + c.prefill_tokens_skipped,
            e.prefill_tokens_computed + e.prefill_tokens_skipped)
      << "backends disagree on total prefill positions";

  EXPECT_EQ(c.prefix.lookups, e.prefix.lookups);
  EXPECT_EQ(c.prefix.hits, e.prefix.hits);
  EXPECT_EQ(c.prefix.matched_tokens, e.prefix.matched_tokens);
  EXPECT_EQ(c.prefix.shared_blocks, e.prefix.shared_blocks);
  EXPECT_EQ(c.prefix.cow_matches, e.prefix.cow_matches);
  EXPECT_EQ(c.prefix.inserted_blocks, e.prefix.inserted_blocks);
}

}  // namespace testing_util
}  // namespace aptserve
