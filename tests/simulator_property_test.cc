// Property tests: invariants that must hold for EVERY scheduler on EVERY
// workload — token conservation, timeline monotonicity, memory bounds —
// swept over randomized traces (datasets x rates x burstiness x seeds).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "baselines/fastgen_scheduler.h"
#include "baselines/fcfs_scheduler.h"
#include "baselines/random_scheduler.h"
#include "baselines/sarathi_scheduler.h"
#include "core/apt_sarathi_scheduler.h"
#include "core/apt_scheduler.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace aptserve {
namespace {

class SimulatorPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {
 protected:
  static std::unique_ptr<Scheduler> Make(const std::string& kind,
                                         const SloSpec& slo) {
    if (kind == "fcfs") return std::make_unique<FcfsScheduler>();
    if (kind == "random") return std::make_unique<RandomScheduler>();
    if (kind == "sarathi") return std::make_unique<SarathiScheduler>();
    if (kind == "fastgen") return std::make_unique<FastGenScheduler>();
    if (kind == "apt") {
      AptConfig c;
      c.slo = slo;
      return std::make_unique<AptScheduler>(c);
    }
    if (kind == "apt_pred") {
      AptConfig c;
      c.slo = slo;
      c.enable_prediction = true;
      return std::make_unique<AptScheduler>(c);
    }
    AptSarathiConfig c;
    c.slo = slo;
    return std::make_unique<AptSarathiScheduler>(c);
  }
};

TEST_P(SimulatorPropertyTest, InvariantsHoldOnRandomWorkloads) {
  const auto& [kind, seed] = GetParam();
  Rng meta(seed);
  // Randomize the workload shape.
  const char* datasets[] = {"ShareGPT", "HumanEval", "LongBench"};
  auto profile =
      DatasetProfile::ByName(datasets[meta.UniformInt(0, 2)]);
  ASSERT_TRUE(profile.ok());
  TraceConfig tc;
  tc.profile = *profile;
  tc.num_requests = static_cast<int32_t>(meta.UniformInt(40, 150));
  tc.rate_per_sec = meta.Uniform(0.5, 12.0);
  tc.cv = meta.Uniform(1.0, 8.0);
  tc.seed = seed * 31 + 7;
  auto trace = BuildTrace(tc);
  ASSERT_TRUE(trace.ok());

  const SloSpec slo{1.0, 1.0};
  auto sched = Make(kind, slo);
  const ModelSpec model = ModelSpec::Opt13B();
  CostModel cm(model, ClusterSpec::ForModel(model));
  Simulator sim(cm, SimulatorConfig{});
  auto result = sim.Run(*trace, sched.get(), slo);
  ASSERT_TRUE(result.ok()) << kind << " seed=" << seed << ": "
                           << result.status().ToString();

  const SloReport& rep = result->report;
  // Every request produced a first token.
  EXPECT_EQ(rep.ttfts.count(), trace->size());
  // Memory stayed within the pool.
  EXPECT_GT(result->peak_blocks, 0);
  EXPECT_LE(result->peak_blocks, result->pool_blocks);
  // Serving takes at least as long as the busiest possible schedule: one
  // iteration overhead per emitted token batch is a weak but sound bound.
  EXPECT_GT(rep.total_serving_time, 0.0);
  EXPECT_GT(rep.iterations, 0);
  // Attainment fractions are probabilities.
  for (double v : {rep.slo_attainment, rep.ttft_attainment,
                   rep.tbt_attainment, rep.batch_limit_time_ratio}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // TTFTs are strictly positive and finite.
  EXPECT_GT(rep.ttfts.Min(), 0.0);
  EXPECT_LT(rep.ttfts.Max(), 1e7);
}

INSTANTIATE_TEST_SUITE_P(
    SchedulersAndSeeds, SimulatorPropertyTest,
    ::testing::Combine(::testing::Values("fcfs", "random", "sarathi",
                                         "fastgen", "apt", "apt_pred",
                                         "apt_s"),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// Token conservation at the record level: every request's record holds
// exactly output_len token events (1 TTFT + output_len-1 TBT gaps), no
// matter how much preemption/conversion churn occurred.
TEST(SimulatorConservationTest, TokenEventsMatchOutputLengths) {
  TraceConfig tc;
  tc.profile = DatasetProfile::ShareGpt();
  tc.num_requests = 120;
  tc.rate_per_sec = 8.0;  // heavy churn
  tc.cv = 5.0;
  tc.seed = 67;
  auto trace = BuildTrace(tc);
  ASSERT_TRUE(trace.ok());
  const SloSpec slo{1.0, 1.0};
  AptConfig ac;
  ac.slo = slo;
  AptScheduler sched(ac);
  const ModelSpec model = ModelSpec::Opt13B();
  CostModel cm(model, ClusterSpec::ForModel(model));

  // Use a collector-view via a custom run: re-run and inspect records
  // through the report sample counts.
  Simulator sim(cm, SimulatorConfig{});
  auto result = sim.Run(*trace, &sched, slo);
  ASSERT_TRUE(result.ok());
  // Sum of TBT samples across requests = sum(output_len - 1).
  int64_t expected_gaps = 0;
  for (const Request& r : *trace) expected_gaps += r.output_len - 1;
  // p99_tbts has one entry per request with >= 1 gap; the total gap count
  // isn't exposed directly, so check the per-request record proxy: every
  // request with output_len > 1 contributed a P99 sample.
  int64_t multi_token = 0;
  for (const Request& r : *trace) {
    if (r.output_len > 1) ++multi_token;
  }
  EXPECT_EQ(result->report.p99_tbts.count(),
            static_cast<size_t>(multi_token));
}

}  // namespace
}  // namespace aptserve
