// MetricsRegistry: handle semantics, concurrent updates, and the
// Prometheus text round-trip (export → parse → every sample matches the
// live registry value) that CI and the trace exporters lean on.
#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace aptserve::obs {
namespace {

TEST(MetricsRegistryTest, CounterBasics) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("requests_total");
  EXPECT_EQ(c->value(), 0);
  c->Inc();
  c->Inc(41);
  EXPECT_EQ(c->value(), 42);
  // Same (name, labels) resolves to the same object; a labelled series is
  // distinct.
  EXPECT_EQ(reg.GetCounter("requests_total"), c);
  EXPECT_NE(reg.GetCounter("requests_total", "instance=\"1\""), c);
}

TEST(MetricsRegistryTest, GaugeSetMaxAndAdd) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("queue_depth_high_water");
  g->SetMax(3.0);
  g->SetMax(7.0);
  g->SetMax(5.0);  // lower value must not regress the high-water mark
  EXPECT_DOUBLE_EQ(g->value(), 7.0);
  g->Set(1.5);
  g->Add(2.5);
  EXPECT_DOUBLE_EQ(g->value(), 4.0);
}

TEST(MetricsRegistryTest, ConcurrentCounterIncrements) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("churn_total");
  Gauge* g = reg.GetGauge("churn_high_water");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Inc();
        g->SetMax(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->value(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(g->value(), kThreads * kPerThread - 1);
}

TEST(MetricsRegistryTest, HistogramSnapshot) {
  MetricsRegistry reg;
  HistogramMetric* h = reg.GetHistogram("iteration_seconds");
  h->Observe(0.001);
  h->Observe(0.010);
  h->Observe(0.100);
  const LatencyHistogram snap = h->Snapshot();
  EXPECT_EQ(snap.count(), 3u);
  EXPECT_NEAR(snap.sum(), 0.111, 1e-12);
  const auto buckets = snap.CumulativeBuckets();
  ASSERT_FALSE(buckets.empty());
  // Cumulative counts are monotone and end at the total.
  uint64_t prev = 0;
  for (const auto& [bound, cum] : buckets) {
    EXPECT_GE(cum, prev);
    prev = cum;
  }
  EXPECT_EQ(prev, 3u);
}

TEST(MetricsRegistryTest, PrometheusRoundTrip) {
  MetricsRegistry reg;
  reg.GetCounter("aptserve_preemptions_total",
                 "instance=\"0\",reason=\"swap_out\"")
      ->Inc(5);
  reg.GetCounter("aptserve_preemptions_total",
                 "instance=\"1\",reason=\"memory_wall\"")
      ->Inc(2);
  reg.GetCounter("aptserve_tokens_generated_total")->Inc(12345);
  // A value that only survives %.17g formatting intact.
  reg.GetGauge("aptserve_fleet_instance_seconds")->Set(1.0 / 3.0);
  reg.GetGauge("aptserve_queue_depth_high_water", "instance=\"0\"")
      ->SetMax(17.0);
  HistogramMetric* h = reg.GetHistogram("aptserve_iteration_seconds");
  h->Observe(0.002);
  h->Observe(0.002);
  h->Observe(1.5);

  const std::string text = reg.ExportPrometheus();
  auto parsed = ParsePrometheusText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  std::map<std::pair<std::string, std::string>, double> samples;
  for (const PromSample& s : *parsed) {
    samples[{s.name, s.labels}] = s.value;
  }
  EXPECT_DOUBLE_EQ(
      (samples.at({"aptserve_preemptions_total",
                   "instance=\"0\",reason=\"swap_out\""})),
      5.0);
  EXPECT_DOUBLE_EQ(
      (samples.at({"aptserve_preemptions_total",
                   "instance=\"1\",reason=\"memory_wall\""})),
      2.0);
  EXPECT_DOUBLE_EQ((samples.at({"aptserve_tokens_generated_total", ""})),
                   12345.0);
  // %.17g → strtod is lossless for doubles: bit-exact, not just close.
  EXPECT_EQ((samples.at({"aptserve_fleet_instance_seconds", ""})), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(
      (samples.at({"aptserve_queue_depth_high_water", "instance=\"0\""})),
      17.0);
  EXPECT_DOUBLE_EQ((samples.at({"aptserve_iteration_seconds_count", ""})),
                   3.0);
  EXPECT_NEAR((samples.at({"aptserve_iteration_seconds_sum", ""})), 1.504,
              1e-12);

  // Histogram bucket lines: cumulative, monotone, +Inf equals _count.
  std::vector<double> bucket_counts;
  double inf_count = -1.0;
  for (const PromSample& s : *parsed) {
    if (s.name != "aptserve_iteration_seconds_bucket") continue;
    if (s.labels.find("le=\"+Inf\"") != std::string::npos) {
      inf_count = s.value;
    } else {
      bucket_counts.push_back(s.value);
    }
  }
  ASSERT_FALSE(bucket_counts.empty());
  for (size_t i = 1; i < bucket_counts.size(); ++i) {
    EXPECT_GE(bucket_counts[i], bucket_counts[i - 1]);
  }
  EXPECT_DOUBLE_EQ(inf_count, 3.0);
}

TEST(MetricsRegistryTest, ExportIsDeterministic) {
  const auto build = [] {
    MetricsRegistry reg;
    reg.GetCounter("b_total", "x=\"2\"")->Inc(2);
    reg.GetCounter("b_total", "x=\"1\"")->Inc(1);
    reg.GetGauge("a_gauge")->Set(3.5);
    return reg.ExportPrometheus();
  };
  EXPECT_EQ(build(), build());
}

TEST(MetricsRegistryTest, ParserRejectsMalformedLines) {
  EXPECT_FALSE(ParsePrometheusText("metric_without_value\n").ok());
  EXPECT_FALSE(ParsePrometheusText("metric nan_is_text_here x\n").ok());
  EXPECT_FALSE(ParsePrometheusText("bad{unclosed=\"1\" 4\n").ok());
  // Comments and blank lines are fine.
  auto ok = ParsePrometheusText("# TYPE a counter\n\na 1\n");
  ASSERT_TRUE(ok.ok());
  ASSERT_EQ(ok->size(), 1u);
  EXPECT_EQ((*ok)[0].name, "a");
}

}  // namespace
}  // namespace aptserve::obs
