// SIMD dispatch agreement: every dispatched ops.h entry point against the
// pinned scalar reference (ops::scalar), at sizes straddling the vector
// width so tail lanes and remainder loops are exercised. Elementwise
// kernels must match bit-for-bit (the vector path uses the same mul+add
// structure); reduction kernels (Dot, LayerNorm, and everything built on
// them) may reorder the accumulation and are held to a relative bound;
// transcendental kernels (Softmax, Gelu) run on a polynomial exp and are
// held to their own documented bound plus an offset-invariance pin.
//
// These tests are meaningful on BOTH CI ISA legs: with -DAPT_FORCE_SCALAR=ON
// the dispatched entry points must be exactly the scalar reference; with a
// vector backend they must agree within the documented bounds. The vector
// leg additionally sets APTSERVE_REQUIRE_SIMD=1 so a silently-scalar build
// (missing flags, failed runtime probe) fails loudly instead of vacuously
// passing the agreement tests.

#include "engine/ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"

namespace aptserve {
namespace {

// Sizes straddling every lane boundary of interest: 8 (AVX2), 4 (NEON),
// 32 (the AVX2 Dot unrolled chunk), plus larger odd sizes.
const int32_t kSizes[] = {1,  2,  3,  7,  8,   9,   15,  16,  17,
                          31, 32, 33, 63, 64,  65,  100, 255, 256, 257};

std::vector<float> RandomVec(Rng* rng, int32_t n, double scale = 1.0) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = static_cast<float>(rng->Normal(0.0, scale));
  return v;
}

// Bound for reduction kernels: generous against FP reassociation, far
// below any indexing/tail bug (which shows up as O(1) errors).
void ExpectClose(const float* want, const float* got, int32_t n,
                 double tol = 1e-4) {
  for (int32_t i = 0; i < n; ++i) {
    ASSERT_NEAR(want[i], got[i], tol * (1.0 + std::abs(want[i])))
        << "element " << i << " of " << n;
  }
}

void ExpectExact(const float* want, const float* got, int32_t n) {
  for (int32_t i = 0; i < n; ++i) {
    ASSERT_EQ(want[i], got[i]) << "element " << i << " of " << n;
  }
}

TEST(SimdDispatchTest, IsaReportCoherent) {
  const std::string isa = ops::ActiveIsa();
  EXPECT_TRUE(isa == "avx2+fma" || isa == "neon" || isa == "scalar") << isa;
  if (isa == "scalar") {
    EXPECT_EQ(ops::VectorWidthFloats(), 1);
  } else {
    EXPECT_GT(ops::VectorWidthFloats(), 1);
  }
}

TEST(SimdDispatchTest, RequireSimdEnvHonored) {
  // CI's vector leg exports APTSERVE_REQUIRE_SIMD=1: the build must have
  // resolved a real vector backend or the leg is not testing what it
  // claims to.
  if (std::getenv("APTSERVE_REQUIRE_SIMD") != nullptr) {
    EXPECT_STRNE(ops::ActiveIsa(), "scalar")
        << "APTSERVE_REQUIRE_SIMD is set but the build dispatches to scalar";
  }
}

TEST(SimdDispatchTest, DotAgreesWithScalar) {
  Rng rng(11);
  for (int32_t n : kSizes) {
    const std::vector<float> a = RandomVec(&rng, n);
    const std::vector<float> b = RandomVec(&rng, n);
    const float want = ops::scalar::Dot(a.data(), b.data(), n);
    const float got = ops::Dot(a.data(), b.data(), n);
    ASSERT_NEAR(want, got, 1e-4 * (1.0 + std::abs(want))) << "n=" << n;
  }
}

TEST(SimdDispatchTest, DotIsDeterministic) {
  Rng rng(12);
  const std::vector<float> a = RandomVec(&rng, 257);
  const std::vector<float> b = RandomVec(&rng, 257);
  const float first = ops::Dot(a.data(), b.data(), 257);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(first, ops::Dot(a.data(), b.data(), 257));
  }
}

TEST(SimdDispatchTest, MatVecAgreesWithScalar) {
  Rng rng(13);
  for (int32_t cols : kSizes) {
    const int32_t rows = 5;
    const std::vector<float> w = RandomVec(&rng, rows * cols);
    const std::vector<float> x = RandomVec(&rng, cols);
    std::vector<float> want(rows), got(rows);
    ops::scalar::MatVec(w.data(), x.data(), want.data(), rows, cols);
    ops::MatVec(w.data(), x.data(), got.data(), rows, cols);
    ExpectClose(want.data(), got.data(), rows);
  }
}

TEST(SimdDispatchTest, MatVecTransposedBitIdentical) {
  // The vector path accumulates y += w_r * x_r via explicit mul+add in the
  // same r-major order as the scalar loop — exact, not just close.
  Rng rng(14);
  for (int32_t cols : kSizes) {
    const int32_t rows = 7;
    const std::vector<float> w = RandomVec(&rng, rows * cols);
    const std::vector<float> x = RandomVec(&rng, rows);
    std::vector<float> want(cols), got(cols);
    ops::scalar::MatVecTransposed(w.data(), x.data(), want.data(), rows, cols);
    ops::MatVecTransposed(w.data(), x.data(), got.data(), rows, cols);
    ExpectExact(want.data(), got.data(), cols);
  }
}

TEST(SimdDispatchTest, ElementwiseBitIdentical) {
  Rng rng(15);
  for (int32_t n : kSizes) {
    const std::vector<float> base = RandomVec(&rng, n);
    const std::vector<float> add = RandomVec(&rng, n);

    std::vector<float> a = base, b = base;
    ops::scalar::AddInPlace(a.data(), add.data(), n);
    ops::AddInPlace(b.data(), add.data(), n);
    ExpectExact(a.data(), b.data(), n);

    a = base, b = base;
    ops::scalar::ScaleInPlace(a.data(), 0.37f, n);
    ops::ScaleInPlace(b.data(), 0.37f, n);
    ExpectExact(a.data(), b.data(), n);

    a = base, b = base;
    ops::scalar::Relu(a.data(), n);
    ops::Relu(b.data(), n);
    ExpectExact(a.data(), b.data(), n);
  }
}

TEST(SimdDispatchTest, SoftmaxAgreesWithScalar) {
  // The vector path replaces libm exp with a ~2-ulp polynomial and sums
  // lane-major, so agreement is bounded, not exact. Outputs are
  // probabilities (≤ 1), so the absolute part of the bound dominates.
  Rng rng(16);
  for (int32_t n : kSizes) {
    const std::vector<float> base = RandomVec(&rng, n, 2.0);
    std::vector<float> a = base, b = base;
    ops::scalar::Softmax(a.data(), n);
    ops::Softmax(b.data(), n);
    ExpectClose(a.data(), b.data(), n, 1e-5);
    float sum = 0.0f;
    for (int32_t i = 0; i < n; ++i) sum += b[i];
    ASSERT_NEAR(sum, 1.0f, 1e-5) << "n=" << n;
  }
}

TEST(SimdDispatchTest, SoftmaxIsDeterministic) {
  Rng rng(21);
  const std::vector<float> base = RandomVec(&rng, 257, 2.0);
  std::vector<float> first = base;
  ops::Softmax(first.data(), 257);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<float> again = base;
    ops::Softmax(again.data(), 257);
    ExpectExact(first.data(), again.data(), 257);
  }
}

TEST(SimdDispatchTest, GeluAgreesWithScalar) {
  // Same tanh-form constants as the reference; tanh itself is evaluated
  // through the polynomial exp, hence a bound instead of exactness.
  Rng rng(22);
  for (int32_t n : kSizes) {
    const std::vector<float> base = RandomVec(&rng, n, 3.0);
    std::vector<float> a = base, b = base;
    ops::scalar::Gelu(a.data(), n);
    ops::Gelu(b.data(), n);
    ExpectClose(a.data(), b.data(), n, 1e-5);
  }
}

TEST(SimdDispatchTest, GeluOffsetInvariant) {
  // The fused MatMat tile applies Gelu to kRowTile sub-ranges; that is
  // only bit-identical to the unfused full-range call if every element's
  // result is independent of where the vector/tail boundary falls. Apply
  // in deliberately misaligned chunks and require exact agreement.
  Rng rng(23);
  const int32_t n = 257;
  const std::vector<float> base = RandomVec(&rng, n, 3.0);
  std::vector<float> full = base;
  ops::Gelu(full.data(), n);
  for (int32_t chunk : {1, 3, 5, 13, 32}) {
    std::vector<float> pieces = base;
    for (int32_t lo = 0; lo < n; lo += chunk) {
      ops::Gelu(pieces.data() + lo, std::min(chunk, n - lo));
    }
    ExpectExact(full.data(), pieces.data(), n);
  }
}

TEST(SimdDispatchTest, ArgMaxAlwaysScalar) {
  // ArgMax still forwards to the reference; pin that so a future
  // vectorization must come with its own tie-breaking guarantee.
  Rng rng(24);
  for (int32_t n : kSizes) {
    const std::vector<float> base = RandomVec(&rng, n, 2.0);
    ASSERT_EQ(ops::scalar::ArgMax(base.data(), n), ops::ArgMax(base.data(), n));
  }
}

TEST(SimdDispatchTest, LayerNormAgreesWithScalar) {
  Rng rng(17);
  for (int32_t n : kSizes) {
    const std::vector<float> x = RandomVec(&rng, n, 3.0);
    const std::vector<float> gain = RandomVec(&rng, n);
    const std::vector<float> bias = RandomVec(&rng, n);
    std::vector<float> want(n), got(n);
    ops::scalar::LayerNorm(x.data(), gain.data(), bias.data(), want.data(), n);
    ops::LayerNorm(x.data(), gain.data(), bias.data(), got.data(), n);
    ExpectClose(want.data(), got.data(), n, 5e-4);
  }
}

TEST(SimdDispatchTest, BlockedKernelsAgreeWithScalar) {
  // The blocked tier funnels through the dispatched Dot/LayerNorm, so vs
  // the *scalar* reference it inherits the reduction bound (and is exact
  // on the force-scalar leg).
  Rng rng(18);
  for (int32_t cols : {3, 8, 33, 65, 100}) {
    const int32_t batch = 4, rows = 6;
    const std::vector<float> w = RandomVec(&rng, rows * cols);
    const std::vector<float> x = RandomVec(&rng, batch * cols);
    const std::vector<float> gain = RandomVec(&rng, cols);
    const std::vector<float> bias = RandomVec(&rng, cols);

    std::vector<float> want(static_cast<size_t>(batch) * rows);
    std::vector<float> got(want.size());

    for (int32_t b = 0; b < batch; ++b) {
      ops::scalar::MatVec(w.data(), x.data() + b * cols, want.data() + b * rows,
                          rows, cols);
    }
    ops::MatMat(w.data(), x.data(), got.data(), batch, rows, cols);
    ExpectClose(want.data(), got.data(), batch * rows);

    ops::MatVecBlocked(w.data(), x.data(), got.data(), rows, cols);
    ExpectClose(want.data(), got.data(), rows);

    std::vector<float> norm_want(static_cast<size_t>(batch) * cols);
    std::vector<float> norm_got(norm_want.size());
    for (int32_t b = 0; b < batch; ++b) {
      ops::scalar::LayerNorm(x.data() + b * cols, gain.data(), bias.data(),
                             norm_want.data() + b * cols, cols);
    }
    ops::LayerNormBatch(x.data(), gain.data(), bias.data(), norm_got.data(),
                        batch, cols);
    ExpectClose(norm_want.data(), norm_got.data(), batch * cols, 5e-4);

    for (int32_t b = 0; b < batch; ++b) {
      ops::scalar::MatVec(w.data(), norm_want.data() + b * cols,
                          want.data() + b * rows, rows, cols);
    }
    ops::FusedLayerNormMatMat(x.data(), gain.data(), bias.data(), w.data(),
                              got.data(), batch, rows, cols);
    ExpectClose(want.data(), got.data(), batch * rows, 5e-3);

    for (int32_t b = 0; b < batch; ++b) {
      ops::scalar::MatVec(w.data(), x.data() + b * cols, want.data() + b * rows,
                          rows, cols);
    }
    ops::scalar::Relu(want.data(), batch * rows);
    ops::FusedMatMatAct(w.data(), x.data(), got.data(), batch, rows, cols,
                        /*use_relu=*/true);
    ExpectClose(want.data(), got.data(), batch * rows);
  }
}

TEST(SimdDispatchTest, ForcedScalarDispatchIsExact) {
  // When the build carries no vector backend, dispatch must be the scalar
  // reference bit-for-bit — every entry point, not just the elementwise
  // ones. (On a vector build this test is vacuous and skipped.)
  if (std::string(ops::ActiveIsa()) != "scalar") {
    GTEST_SKIP() << "vector backend active";
  }
  Rng rng(19);
  for (int32_t n : kSizes) {
    const std::vector<float> a = RandomVec(&rng, n);
    const std::vector<float> b = RandomVec(&rng, n);
    ASSERT_EQ(ops::scalar::Dot(a.data(), b.data(), n),
              ops::Dot(a.data(), b.data(), n));
    std::vector<float> want(n), got(n);
    ops::scalar::LayerNorm(a.data(), b.data(), b.data(), want.data(), n);
    ops::LayerNorm(a.data(), b.data(), b.data(), got.data(), n);
    ExpectExact(want.data(), got.data(), n);

    std::vector<float> sa = a, sb = a;
    ops::scalar::Softmax(sa.data(), n);
    ops::Softmax(sb.data(), n);
    ExpectExact(sa.data(), sb.data(), n);

    sa = a, sb = a;
    ops::scalar::Gelu(sa.data(), n);
    ops::Gelu(sb.data(), n);
    ExpectExact(sa.data(), sb.data(), n);
  }
}

}  // namespace
}  // namespace aptserve
