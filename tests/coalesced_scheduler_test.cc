// Tests for the chunked-prefill coalescing baselines: Sarathi-Serve and
// DeepSpeed-FastGen.
#include <gtest/gtest.h>

#include "baselines/fastgen_scheduler.h"
#include "baselines/sarathi_scheduler.h"
#include "tests/scheduler_test_util.h"

namespace aptserve {
namespace {

using testutil::FindItem;
using testutil::SchedulerFixture;

TEST(SarathiSchedulerTest, CoalescesDecodesWithPrefillChunks) {
  SchedulerFixture fx(4096, 16);
  fx.AddRunning(1, 32, 20, 3, CacheType::kKV, 0.5);
  fx.AddRunning(2, 32, 20, 3, CacheType::kKV, 0.5);
  fx.AddWaiting(3, 1000, 20, 0.2);
  SarathiConfig cfg;
  cfg.token_budget = 512;
  cfg.chunk_size = 256;
  SarathiScheduler sched(cfg);
  auto plan = sched.PlanIteration(fx.Input(1.0));
  // Mixed batch: both decodes plus one 256-token chunk of the prefill.
  ASSERT_EQ(plan.items.size(), 3u);
  EXPECT_EQ(plan.items[0].prefill_chunk, 0);
  EXPECT_EQ(plan.items[1].prefill_chunk, 0);
  const ScheduledItem* chunk = FindItem(plan, 3);
  ASSERT_NE(chunk, nullptr);
  EXPECT_EQ(chunk->prefill_chunk, 256);
}

TEST(SarathiSchedulerTest, FixedChunkSizeEvenWithSpareBudget) {
  SchedulerFixture fx(4096, 16);
  fx.AddWaiting(1, 1000, 20, 0.0);
  SarathiConfig cfg;
  cfg.token_budget = 512;
  cfg.chunk_size = 128;
  SarathiScheduler sched(cfg);
  auto plan = sched.PlanIteration(fx.Input(1.0));
  // Sarathi uses uniform chunks: 128 tokens even though 512 are available
  // for this request... budget allows multiple waiting requests though.
  ASSERT_FALSE(plan.items.empty());
  EXPECT_EQ(plan.items[0].prefill_chunk, 128);
}

TEST(SarathiSchedulerTest, FinalChunkSmallerThanChunkSize) {
  SchedulerFixture fx(4096, 16);
  SimRequest* w = fx.AddWaiting(1, 300, 20, 0.0);
  w->prefill_progress = 250;  // mid-pass: 50 tokens remain
  Status st = fx.assigner.CreateFilled(1, CacheType::kKV, 250);
  ASSERT_TRUE(st.ok());
  w->cached_tokens = 250;
  SarathiScheduler sched;
  auto plan = sched.PlanIteration(fx.Input(1.0));
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_EQ(plan.items[0].prefill_chunk, 50);
}

TEST(SarathiSchedulerTest, DecodesConsumeBudget) {
  SchedulerFixture fx(8192, 16);
  SarathiConfig cfg;
  cfg.token_budget = 4;
  for (int i = 0; i < 6; ++i) {
    fx.AddRunning(i, 16, 20, 2, CacheType::kKV, 0.5);
  }
  fx.AddWaiting(100, 50, 10, 0.2);
  SarathiScheduler sched(cfg);
  auto plan = sched.PlanIteration(fx.Input(1.0));
  // Budget of 4 admits only 4 decodes, no prefill chunk.
  EXPECT_EQ(plan.items.size(), 4u);
  for (const auto& item : plan.items) EXPECT_EQ(item.prefill_chunk, 0);
}

TEST(SarathiSchedulerTest, MemoryLimitStopsChunkAdmission) {
  SchedulerFixture fx(/*pool_blocks=*/4, /*block_size=*/16);
  fx.AddWaiting(1, 200, 10, 0.0);  // chunk of 256->200... needs 2*13 blocks
  SarathiScheduler sched;
  auto plan = sched.PlanIteration(fx.Input(1.0));
  EXPECT_TRUE(plan.items.empty());
}

TEST(FastGenSchedulerTest, SplitsOnlyWhenExceedingBudget) {
  SchedulerFixture fx(8192, 16);
  fx.AddWaiting(1, 300, 20, 0.0);
  fx.AddWaiting(2, 300, 20, 0.1);
  FastGenConfig cfg;
  cfg.token_budget = 512;
  FastGenScheduler sched(cfg);
  auto plan = sched.PlanIteration(fx.Input(1.0));
  // First prompt taken whole (300), second split to fill the budget (212).
  ASSERT_EQ(plan.items.size(), 2u);
  EXPECT_EQ(plan.items[0].prefill_chunk, 300);
  EXPECT_EQ(plan.items[1].prefill_chunk, 212);
}

TEST(FastGenSchedulerTest, DecodesFirstThenFill) {
  SchedulerFixture fx(8192, 16);
  fx.AddRunning(1, 64, 20, 4, CacheType::kKV, 0.5);
  fx.AddWaiting(2, 100, 20, 0.1);
  FastGenConfig cfg;
  cfg.token_budget = 64;
  FastGenScheduler sched(cfg);
  auto plan = sched.PlanIteration(fx.Input(1.0));
  ASSERT_EQ(plan.items.size(), 2u);
  EXPECT_EQ(plan.items[0].prefill_chunk, 0);
  EXPECT_EQ(plan.items[1].prefill_chunk, 63);  // 64 - 1 decode token
}

TEST(FastGenSchedulerTest, EmptyInput) {
  SchedulerFixture fx;
  FastGenScheduler sched;
  auto plan = sched.PlanIteration(fx.Input(0.0));
  EXPECT_TRUE(plan.items.empty());
}

}  // namespace
}  // namespace aptserve
