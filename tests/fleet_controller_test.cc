// Event-driven FleetController: elastic scaling (cold-start warmup,
// drain-and-retire, policy votes), live request migration with cache-state
// handoff (refcount conservation, destination prefix dedupe, mid-block COW
// tail survival, bit-identical tokens vs never-migrated runs), and
// thread-count bit-identity of elastic fleets.
#include "serve/fleet_controller.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/fcfs_scheduler.h"
#include "baselines/sarathi_scheduler.h"
#include "engine/inference_engine.h"
#include "serve/cost_model_backend.h"
#include "serve/inference_backend.h"
#include "serve/multi_instance.h"
#include "workload/arrival.h"
#include "workload/shared_prefix.h"

namespace aptserve {
namespace {

CostModel Opt13() {
  const ModelSpec m = ModelSpec::Opt13B();
  return CostModel(m, ClusterSpec::ForModel(m));
}

/// `n` requests at a uniform arrival spacing starting at `t0`.
void AppendPhase(std::vector<Request>* trace, int32_t n, double t0,
                 double gap, int32_t prompt_len = 64, int32_t output_len = 16) {
  for (int32_t i = 0; i < n; ++i) {
    Request r;
    r.id = static_cast<RequestId>(trace->size());
    r.prompt_len = prompt_len;
    r.output_len = output_len;
    r.arrival = t0 + i * gap;
    trace->push_back(r);
  }
}

SchedulerFactory Fcfs() {
  return [] { return std::make_unique<FcfsScheduler>(); };
}

BackendFactory CostBackends(const CostModel* cm, bool sharing = false,
                            int32_t pool_blocks = -1) {
  return [cm, sharing,
          pool_blocks](int32_t) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
    CostModelBackend::Options o;
    o.enable_prefix_sharing = sharing;
    if (pool_blocks > 0) {
      o.block_size = 4;
      o.pool_blocks_override = pool_blocks;
      o.token_vocab = 1000;
    }
    APT_ASSIGN_OR_RETURN(std::unique_ptr<CostModelBackend> backend,
                         CostModelBackend::Create(*cm, o));
    return std::unique_ptr<ExecutionBackend>(std::move(backend));
  };
}

/// A rule that votes down every tick (never up, never holds): forces a
/// drain each scale_down_cooldown_s — the deterministic way to exercise
/// migration in tests.
ScalingRule AlwaysDown() {
  ScalingRule r = ScalingRule::QueueDepth(/*high=*/1e18, /*low=*/1e18);
  return r;
}

TEST(FleetControllerTest, StaticFleetIsDegenerate) {
  const CostModel cm = Opt13();
  std::vector<Request> trace;
  AppendPhase(&trace, 40, 0.0, 0.25);
  FleetConfig cfg;
  cfg.router.n_instances = 2;
  FleetController controller(cfg, &cm);
  auto result = controller.Run(trace, Fcfs(), CostBackends(&cm),
                               SloSpec{1.0, 1.0});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const FleetMetrics& fm = result->fleet;
  EXPECT_EQ(fm.cold_starts, 0);
  EXPECT_EQ(fm.migrations, 0);
  EXPECT_EQ(fm.peak_instances, 2);
  for (const FleetScaleEvent& e : fm.scale_events) {
    EXPECT_TRUE(e.kind == FleetScaleEvent::Kind::kAdd ||
                e.kind == FleetScaleEvent::Kind::kLive);
    EXPECT_EQ(e.time, 0.0);
  }
  // The operator pays for both instances over the whole makespan.
  EXPECT_GT(fm.instance_seconds, 0.0);
  EXPECT_DOUBLE_EQ(
      fm.instance_seconds,
      2 * std::max(result->serve.combined.total_serving_time,
                   fm.instance_seconds / 2));
  // And the serve-side result matches the classic runner bit for bit.
  DispatchConfig dispatch;
  dispatch.n_instances = 2;
  dispatch.policy = DispatchPolicy::kRoundRobin;
  FleetConfig rr = cfg;
  rr.router.policy = RoutePolicy::kRoundRobin;
  FleetController rr_controller(rr, &cm);
  auto direct = rr_controller.Run(trace, Fcfs(), CostBackends(&cm),
                                  SloSpec{1.0, 1.0});
  MultiInstanceRunner runner(dispatch, ServingLoopConfig{});
  auto classic = runner.Run(trace, Fcfs(), CostBackends(&cm),
                            SloSpec{1.0, 1.0});
  ASSERT_TRUE(direct.ok() && classic.ok());
  EXPECT_EQ(direct->serve.combined.ttfts.samples(),
            classic->combined.ttfts.samples());
  EXPECT_EQ(direct->serve.combined.total_serving_time,
            classic->combined.total_serving_time);
}

TEST(FleetControllerTest, ScalesUpUnderLoadAndDrainsWhenQuiet) {
  const CostModel cm = Opt13();
  std::vector<Request> trace;
  // A hard burst, then a long quiet tail.
  AppendPhase(&trace, 150, 0.0, 0.05, 200, 24);
  AppendPhase(&trace, 20, 60.0, 4.0, 64, 8);
  FleetConfig cfg;
  cfg.router.n_instances = 1;
  cfg.router.policy = RoutePolicy::kLeastOutstandingWork;
  cfg.min_instances = 1;
  cfg.max_instances = 3;
  cfg.tick_interval_s = 0.5;
  cfg.instance_warmup_s = 0.25;
  cfg.scale_up_cooldown_s = 0.5;
  cfg.scale_down_cooldown_s = 5.0;
  cfg.scaling = {ScalingRule::QueueDepth(1.0, 0.1),
                 ScalingRule::TargetUtilization(0.75, 0.25)};
  cfg.enable_migration = true;
  FleetController controller(cfg, &cm);
  auto result = controller.Run(trace, Fcfs(), CostBackends(&cm),
                               SloSpec{5.0, 5.0});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const FleetMetrics& fm = result->fleet;
  EXPECT_GE(fm.cold_starts, 1);
  EXPECT_GE(fm.peak_instances, 2);
  bool drained = false, retired = false;
  for (const FleetScaleEvent& e : fm.scale_events) {
    drained |= e.kind == FleetScaleEvent::Kind::kDrainStart;
    retired |= e.kind == FleetScaleEvent::Kind::kRetire;
  }
  EXPECT_TRUE(drained);
  EXPECT_TRUE(retired);
  // Every cold add warms up exactly instance_warmup_s later.
  std::unordered_map<int32_t, double> add_time;
  for (const FleetScaleEvent& e : fm.scale_events) {
    if (e.kind == FleetScaleEvent::Kind::kAdd && e.time > 0.0) {
      add_time[e.instance] = e.time;
    } else if (e.kind == FleetScaleEvent::Kind::kLive &&
               add_time.count(e.instance)) {
      EXPECT_DOUBLE_EQ(e.time, add_time[e.instance] + 0.25);
    }
  }
  // All requests served; served counts line up with the trace.
  int64_t served = 0;
  for (int32_t c : result->serve.requests_per_instance) served += c;
  EXPECT_EQ(served, static_cast<int64_t>(trace.size()));
  // The whole point: fewer instance-seconds than a peak-sized static
  // fleet over the same timeline.
  double makespan = 0.0;
  for (const auto& [t, n] : fm.size_timeline) {
    makespan = std::max(makespan, t);
    EXPECT_GE(n, 1);
    EXPECT_LE(n, 3);
  }
  EXPECT_LT(fm.instance_seconds, 3 * makespan);
}

TEST(FleetControllerTest, ForcedDrainMigratesQueuedRequestsConservatively) {
  const CostModel cm = Opt13();
  std::vector<Request> trace;
  // An instantaneous burst: queues exist from the first window on, so the
  // forced drains below genuinely evacuate queued requests.
  AppendPhase(&trace, 120, 0.0, 0.001, 150, 16);
  FleetConfig cfg;
  cfg.router.n_instances = 3;
  cfg.min_instances = 1;
  cfg.tick_interval_s = 0.5;
  cfg.scale_down_cooldown_s = 1.0;
  cfg.scaling = {AlwaysDown()};
  cfg.enable_migration = true;
  cfg.max_migrations_per_tick = 64;
  FleetController controller(cfg, &cm);
  // A small pool so real queues form — migrations need waiting requests.
  auto result = controller.Run(trace, Fcfs(),
                               CostBackends(&cm, false, /*pool_blocks=*/512),
                               SloSpec{5.0, 5.0});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->fleet.migrations, 0);
  int64_t served = 0;
  for (int32_t c : result->serve.requests_per_instance) served += c;
  EXPECT_EQ(served, static_cast<int64_t>(trace.size()));
  EXPECT_EQ(result->serve.combined.eligible_requests,
            static_cast<int64_t>(trace.size()));
  // Exactly two drains (3 -> 1), both retired by the end.
  int32_t drains = 0, retires = 0;
  for (const FleetScaleEvent& e : result->fleet.scale_events) {
    drains += e.kind == FleetScaleEvent::Kind::kDrainStart;
    retires += e.kind == FleetScaleEvent::Kind::kRetire;
  }
  EXPECT_EQ(drains, 2);
  EXPECT_EQ(retires, 2);
}

TEST(FleetControllerTest, ElasticFleetIsThreadCountBitIdentical) {
  const CostModel cm = Opt13();
  std::vector<Request> trace;
  AppendPhase(&trace, 100, 0.0, 0.06, 180, 12);
  AppendPhase(&trace, 15, 30.0, 2.0, 64, 8);
  FleetResult results[2];
  const int32_t threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    FleetConfig cfg;
    cfg.router.n_instances = 2;
    cfg.router.policy = RoutePolicy::kLeastOutstandingWork;
    cfg.min_instances = 1;
    cfg.max_instances = 4;
    cfg.tick_interval_s = 0.5;
    cfg.instance_warmup_s = 0.25;
    cfg.scale_up_cooldown_s = 0.5;
    cfg.scale_down_cooldown_s = 3.0;
    cfg.scaling = {ScalingRule::QueueDepth(1.0, 0.1)};
    cfg.enable_migration = true;
    cfg.migration_imbalance_threshold = 2.0;
    cfg.runtime.num_threads = threads[i];
    FleetController controller(cfg, &cm);
    auto r = controller.Run(trace, Fcfs(),
                            CostBackends(&cm, /*sharing=*/true,
                                         /*pool_blocks=*/512),
                            SloSpec{2.0, 2.0});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    results[i] = std::move(*r);
  }
  const SloReport& a = results[0].serve.combined;
  const SloReport& b = results[1].serve.combined;
  EXPECT_EQ(a.ttfts.samples(), b.ttfts.samples());
  EXPECT_EQ(a.p99_tbts.samples(), b.p99_tbts.samples());
  EXPECT_EQ(a.slo_attainment, b.slo_attainment);
  EXPECT_EQ(a.total_serving_time, b.total_serving_time);
  EXPECT_EQ(results[0].serve.requests_per_instance,
            results[1].serve.requests_per_instance);
  EXPECT_EQ(results[0].fleet.migrations, results[1].fleet.migrations);
  EXPECT_EQ(results[0].fleet.migration_bytes, results[1].fleet.migration_bytes);
  EXPECT_EQ(results[0].fleet.instance_seconds,
            results[1].fleet.instance_seconds);
  EXPECT_EQ(results[0].fleet.scale_events.size(),
            results[1].fleet.scale_events.size());
}

// ---- Cache-state handoff at the engine level ------------------------------

InferenceEngine MakeEngine(bool sharing, uint64_t seed = 42) {
  InferenceEngine engine(ModelConfig::Tiny(), seed, /*num_blocks=*/128,
                         /*block_size=*/4);
  if (sharing) engine.EnablePrefixSharing();
  return engine;
}

std::vector<int32_t> Prompt(int32_t len, int32_t offset = 1) {
  std::vector<int32_t> p(len);
  for (int32_t i = 0; i < len; ++i) p[i] = (offset + i) % 60;
  return p;
}

TEST(MigrationHandoffTest, RefcountConservationAcrossExportImport) {
  InferenceEngine src = MakeEngine(/*sharing=*/true);
  InferenceEngine dst = MakeEngine(/*sharing=*/true);
  ASSERT_TRUE(src.AddRequest(1, Prompt(10), CacheType::kKV).ok());
  auto chunk = src.PrefillChunk(1, 6);
  ASSERT_TRUE(chunk.ok());
  EXPECT_FALSE(chunk->has_value());  // mid-pass
  EXPECT_GT(src.pool().num_allocated(), 0);

  auto image = src.ExportRequest(1);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(image->cached_tokens, 6);
  // No pass completed, so the index holds nothing: every exported block
  // must have returned to the source free list — no leak, no double free.
  EXPECT_EQ(src.pool().num_allocated(), 0);
  EXPECT_GT(src.pool().total_exported_blocks(), 0);
  EXPECT_EQ(src.Find(1), nullptr);

  auto import = dst.ImportRequest(1, *image);
  ASSERT_TRUE(import.ok()) << import.status().ToString();
  EXPECT_TRUE(import->cache_restored);
  EXPECT_EQ(import->deduped_tokens, 0);  // empty destination index
  EXPECT_EQ(import->copied_tokens, 6);
  EXPECT_GT(import->bytes, 0.0);
  EXPECT_GT(dst.pool().total_imported_blocks(), 0);
  const std::string dump = dst.pool().DebugString();
  EXPECT_NE(dump.find("imported="), std::string::npos) << dump;

  // Finish the pass and the request on the destination; afterwards only
  // the destination's own index may hold blocks.
  auto done = dst.PrefillChunk(1, 64);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done->has_value());
  ASSERT_TRUE(dst.RemoveRequest(1).ok());
  EXPECT_EQ(dst.pool().num_allocated(), dst.prefix_index()->indexed_blocks());
}

TEST(MigrationHandoffTest, DestinationDedupeWithMidBlockCowTail) {
  const std::vector<int32_t> prompt = Prompt(10);
  // Reference: never-migrated generation with the same weights.
  InferenceEngine ref = MakeEngine(/*sharing=*/false);
  ASSERT_TRUE(ref.AddRequest(7, prompt, CacheType::kKV).ok());
  auto ref_tokens = ref.Generate(7, 5);
  ASSERT_TRUE(ref_tokens.ok());

  // Destination already serves the same prompt: its index holds the full
  // prompt blocks.
  InferenceEngine dst = MakeEngine(/*sharing=*/true);
  ASSERT_TRUE(dst.AddRequest(100, prompt, CacheType::kKV).ok());
  ASSERT_TRUE(dst.Prefill(100).ok());
  ASSERT_GT(dst.prefix_index()->num_nodes(), 0);

  // Source: a mid-pass request, cached span ending mid-block (6 % 4 != 0).
  InferenceEngine src = MakeEngine(/*sharing=*/true);
  ASSERT_TRUE(src.AddRequest(7, prompt, CacheType::kKV).ok());
  ASSERT_TRUE(src.PrefillChunk(7, 6).ok());
  auto image = src.ExportRequest(7);
  ASSERT_TRUE(image.ok());

  auto import = dst.ImportRequest(7, *image);
  ASSERT_TRUE(import.ok()) << import.status().ToString();
  EXPECT_TRUE(import->cache_restored);
  // 4 tokens adopt the shared full block; the 2-token tail is a local COW
  // copy — nothing crosses the interconnect.
  EXPECT_EQ(import->deduped_tokens, 6);
  EXPECT_EQ(import->copied_tokens, 0);
  EXPECT_EQ(import->bytes, 0.0);

  // The migrated request must finish with bit-identical tokens.
  auto chunk = dst.PrefillChunk(7, 64);
  ASSERT_TRUE(chunk.ok());
  ASSERT_TRUE(chunk->has_value());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(dst.DecodeStep(7).ok());
  EXPECT_EQ(dst.Find(7)->tokens, *ref_tokens);
}

TEST(MigrationHandoffTest, ColdFallbackWhenDestinationPoolIsFull) {
  InferenceEngine src = MakeEngine(/*sharing=*/false);
  ASSERT_TRUE(src.AddRequest(1, Prompt(12), CacheType::kKV).ok());
  ASSERT_TRUE(src.PrefillChunk(1, 8).ok());
  auto image = src.ExportRequest(1);
  ASSERT_TRUE(image.ok());

  // A destination with a pool too small for the cached span.
  InferenceEngine dst(ModelConfig::Tiny(), /*seed=*/42, /*num_blocks=*/2,
                      /*block_size=*/4);
  auto import = dst.ImportRequest(1, *image);
  ASSERT_TRUE(import.ok()) << import.status().ToString();
  EXPECT_FALSE(import->cache_restored);
  EXPECT_EQ(dst.pool().num_allocated(), 0);
  // The request is registered and re-prefills from scratch.
  ASSERT_NE(dst.Find(1), nullptr);
  EXPECT_EQ(dst.Find(1)->cached_tokens, 0);
}

TEST(MigrationHandoffTest, HiddenCachePayloadMigrates) {
  const std::vector<int32_t> prompt = Prompt(9, 5);
  InferenceEngine ref = MakeEngine(/*sharing=*/false);
  ASSERT_TRUE(ref.AddRequest(3, prompt, CacheType::kHidden).ok());
  auto ref_tokens = ref.Generate(3, 4);
  ASSERT_TRUE(ref_tokens.ok());

  InferenceEngine src = MakeEngine(/*sharing=*/false);
  InferenceEngine dst = MakeEngine(/*sharing=*/false);
  ASSERT_TRUE(src.AddRequest(3, prompt, CacheType::kHidden).ok());
  ASSERT_TRUE(src.PrefillChunk(3, 5).ok());
  auto image = src.ExportRequest(3);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->cache_type, CacheType::kHidden);
  auto import = dst.ImportRequest(3, *image);
  ASSERT_TRUE(import.ok());
  EXPECT_TRUE(import->cache_restored);
  EXPECT_EQ(import->deduped_tokens, 0);  // hidden cache never dedupes
  auto chunk = dst.PrefillChunk(3, 64);
  ASSERT_TRUE(chunk.ok());
  ASSERT_TRUE(chunk->has_value());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(dst.DecodeStep(3).ok());
  EXPECT_EQ(dst.Find(3)->tokens, *ref_tokens);
}

// ---- Fleet-level token bit-identity under migration -----------------------

TEST(FleetMigrationTest, MigratedFleetTokensMatchNeverMigratedRun) {
  SharedPrefixConfig wc;
  wc.system_prompt_len = 12;
  wc.num_conversations = 4;
  wc.turns_per_conversation = 3;
  wc.tokens_per_turn = 8;
  wc.output_len_mean = 4;
  wc.output_jitter = 0.2;
  wc.think_time_s = 0.4;
  wc.conversation_stagger_s = 0.05;
  wc.vocab_size = 60;  // inside Tiny's 64-token vocabulary
  wc.seed = 9;
  auto trace = BuildSharedPrefixTrace(wc);
  ASSERT_TRUE(trace.ok());

  // Replica fleet: every instance shares weights (weight_seed 42) and
  // greedy sampling, so a request's tokens depend only on its prompt —
  // the precondition for migration to preserve token streams.
  const auto run = [&](bool migrate)
      -> StatusOr<std::pair<FleetResult,
                            std::unordered_map<RequestId,
                                               std::vector<int32_t>>>> {
    auto sinks = std::make_shared<
        std::vector<std::unordered_map<RequestId, std::vector<int32_t>>>>();
    sinks->reserve(16);
    BackendFactory make_backend =
        [sinks](int32_t) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
      sinks->emplace_back();
      InferenceBackendOptions o;
      o.virtual_timing = true;
      o.virtual_item_seconds = 0.05;  // slow iterations: passes span ticks
      o.enable_prefix_sharing = true;
      o.finished_sink = &sinks->back();
      return std::unique_ptr<ExecutionBackend>(
          std::make_unique<InferenceBackend>(
              ModelConfig::Tiny(), /*weight_seed=*/42, /*num_blocks=*/256,
              /*block_size=*/4, SamplingParams{}, o));
    };
    FleetConfig cfg;
    cfg.router.n_instances = 3;
    if (migrate) {
      // Hot-rebalance on a static fleet: any queue-depth gap moves work
      // (with its cache) between the replicas, every tick.
      cfg.tick_interval_s = 0.1;
      cfg.enable_migration = true;
      cfg.migration_imbalance_threshold = 0.0;
      cfg.max_migrations_per_tick = 4;
    }
    FleetController controller(cfg);
    SarathiConfig sarathi;
    sarathi.chunk_size = 8;
    APT_ASSIGN_OR_RETURN(
        FleetResult result,
        controller.Run(*trace,
                       [&] { return std::make_unique<SarathiScheduler>(
                                 sarathi); },
                       make_backend, SloSpec{30.0, 30.0}));
    std::unordered_map<RequestId, std::vector<int32_t>> tokens;
    for (auto& sink : *sinks) {
      for (auto& [id, seq] : sink) {
        EXPECT_EQ(tokens.count(id), 0u) << "request finished twice";
        tokens[id] = seq;
      }
    }
    return std::make_pair(std::move(result), std::move(tokens));
  };

  // `sinks` must not reallocate under the pointers handed out: reserve is
  // done above; 16 instances is far beyond what these configs spawn.
  auto stay = run(/*migrate=*/false);
  ASSERT_TRUE(stay.ok()) << stay.status().ToString();
  auto moved = run(/*migrate=*/true);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();

  EXPECT_GT(moved->first.fleet.migrations, 0);
  EXPECT_GT(moved->first.fleet.migrations_with_cache, 0)
      << "test must exercise the cache-carrying path";
  ASSERT_EQ(stay->second.size(), trace->size());
  ASSERT_EQ(moved->second.size(), trace->size());
  for (const auto& [id, seq] : stay->second) {
    ASSERT_TRUE(moved->second.count(id));
    EXPECT_EQ(moved->second.at(id), seq)
        << "request " << id << " tokens diverged after migration";
  }
}

}  // namespace
}  // namespace aptserve
