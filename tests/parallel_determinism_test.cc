// The runtime layer's determinism contract: with virtual timing, token
// streams, latency samples and SLO reports are bit-identical across thread
// counts — parallel batch execution must be observationally equivalent to
// the serial engine. Same for the multi-instance fleet: a parallel fleet
// run merges to exactly the serial fleet's report.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/fcfs_scheduler.h"
#include "baselines/sarathi_scheduler.h"
#include "core/apt_scheduler.h"
#include "engine/serving_engine.h"
#include "sim/cluster_spec.h"
#include "sim/cost_model.h"
#include "sim/model_spec.h"
#include "sim/multi_instance.h"
#include "workload/arrival.h"
#include "workload/trace.h"

namespace aptserve {
namespace {

std::vector<Request> TinyTrace(int32_t n, double rate, uint64_t seed = 4) {
  Rng rng(seed);
  auto arrivals = PoissonArrivals(rate, n, &rng);
  EXPECT_TRUE(arrivals.ok());
  std::vector<Request> trace;
  for (int32_t i = 0; i < n; ++i) {
    Request r;
    r.id = i;
    r.prompt_len = static_cast<int32_t>(rng.UniformInt(4, 24));
    r.output_len = static_cast<int32_t>(rng.UniformInt(2, 12));
    r.arrival = (*arrivals)[i];
    trace.push_back(r);
  }
  return trace;
}

ServingEngineConfig Cfg(int32_t num_threads) {
  ServingEngineConfig cfg;
  cfg.model = ModelConfig::Tiny();
  cfg.num_blocks = 96;
  cfg.block_size = 8;
  cfg.slo = SloSpec{5.0, 5.0};
  cfg.calibrate_rho = false;
  cfg.virtual_timing = true;
  cfg.runtime.num_threads = num_threads;
  return cfg;
}

std::unique_ptr<Scheduler> Make(const std::string& kind, const SloSpec& slo) {
  if (kind == "fcfs") return std::make_unique<FcfsScheduler>();
  if (kind == "sarathi") {
    SarathiConfig c;
    c.token_budget = 64;
    c.chunk_size = 16;
    return std::make_unique<SarathiScheduler>(c);
  }
  AptConfig c;
  c.slo = slo;
  c.max_prefill_tokens = 128;
  return std::make_unique<AptScheduler>(c);
}

void ExpectIdenticalRuns(const ServingEngineResult& a,
                         const ServingEngineResult& b) {
  ASSERT_EQ(a.tokens.size(), b.tokens.size());
  for (const auto& [id, toks] : a.tokens) {
    auto it = b.tokens.find(id);
    ASSERT_NE(it, b.tokens.end());
    EXPECT_EQ(toks, it->second) << "tokens diverged for request " << id;
  }
  EXPECT_EQ(a.tokens_generated, b.tokens_generated);
  EXPECT_EQ(a.compute_seconds, b.compute_seconds);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.swap_outs, b.swap_outs);
  EXPECT_EQ(a.swap_ins, b.swap_ins);
  EXPECT_EQ(a.report.iterations, b.report.iterations);
  EXPECT_EQ(a.report.total_serving_time, b.report.total_serving_time);
  EXPECT_EQ(a.report.slo_attainment, b.report.slo_attainment);
  EXPECT_EQ(a.report.ttfts.samples(), b.report.ttfts.samples());
  EXPECT_EQ(a.report.p99_tbts.samples(), b.report.p99_tbts.samples());
}

class CrossThreadCountTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CrossThreadCountTest, TokensAndReportsBitIdentical) {
  const auto trace = TinyTrace(20, 50.0);
  StatusOr<ServingEngineResult> runs[2] = {Status::Internal("unset"),
                                           Status::Internal("unset")};
  const int32_t thread_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    ServingEngine serving(Cfg(thread_counts[i]));
    auto sched = Make(GetParam(), SloSpec{5.0, 5.0});
    runs[i] = serving.Serve(trace, sched.get());
    ASSERT_TRUE(runs[i].ok()) << runs[i].status().ToString();
  }
  ExpectIdenticalRuns(*runs[0], *runs[1]);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, CrossThreadCountTest,
                         ::testing::Values("fcfs", "sarathi", "apt"),
                         [](const auto& info) { return info.param; });

TEST(CrossThreadCountSwapTest, SwapModeBitIdentical) {
  const auto trace = TinyTrace(16, 1000.0, 9);
  StatusOr<ServingEngineResult> runs[2] = {Status::Internal("unset"),
                                           Status::Internal("unset")};
  const int32_t thread_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    ServingEngineConfig cfg = Cfg(thread_counts[i]);
    cfg.num_blocks = 24;  // tight: forces preemption under load
    cfg.preemption_mode = PreemptionMode::kSwap;
    ServingEngine serving(cfg);
    FcfsScheduler sched;
    runs[i] = serving.Serve(trace, &sched);
    ASSERT_TRUE(runs[i].ok()) << runs[i].status().ToString();
  }
  EXPECT_GT(runs[0]->swap_outs + runs[0]->preemptions, 0);
  ExpectIdenticalRuns(*runs[0], *runs[1]);
}

TEST(CrossThreadCountSwapTest, StochasticSamplingBitIdentical) {
  // Non-greedy sampling consumes the shared RNG stream per emitted token;
  // the serial sampling barrier must reproduce the exact draw order.
  const auto trace = TinyTrace(12, 200.0, 5);
  StatusOr<ServingEngineResult> runs[2] = {Status::Internal("unset"),
                                           Status::Internal("unset")};
  const int32_t thread_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    ServingEngineConfig cfg = Cfg(thread_counts[i]);
    cfg.sampling = SamplingParams::TopK(8, 0.9);
    ServingEngine serving(cfg);
    FcfsScheduler sched;
    runs[i] = serving.Serve(trace, &sched);
    ASSERT_TRUE(runs[i].ok()) << runs[i].status().ToString();
  }
  ExpectIdenticalRuns(*runs[0], *runs[1]);
}

TEST(ParallelFleetTest, MergedReportBitIdenticalAcrossThreadCounts) {
  TraceConfig tc;
  tc.profile = DatasetProfile::ShareGpt();
  tc.num_requests = 120;
  tc.rate_per_sec = 4.0;
  tc.seed = 33;
  auto trace = BuildTrace(tc);
  ASSERT_TRUE(trace.ok());
  const SloSpec slo{1.0, 1.0};
  const ModelSpec model = ModelSpec::Opt13B();
  CostModel cm(model, ClusterSpec::ForModel(model));

  SloReport reports[2];
  const int32_t thread_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    MultiInstanceConfig cfg;
    cfg.fleet.router.n_instances = 4;
    cfg.fleet.runtime.num_threads = thread_counts[i];
    MultiInstanceSimulator fleet(cm, cfg);
    auto result = fleet.Run(
        *trace, [] { return std::make_unique<FcfsScheduler>(); }, slo);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    reports[i] = result->combined;
  }
  EXPECT_EQ(reports[0].slo_attainment, reports[1].slo_attainment);
  EXPECT_EQ(reports[0].total_serving_time, reports[1].total_serving_time);
  EXPECT_EQ(reports[0].iterations, reports[1].iterations);
  EXPECT_EQ(reports[0].mean_ttft, reports[1].mean_ttft);
  EXPECT_EQ(reports[0].ttfts.samples(), reports[1].ttfts.samples());
  EXPECT_EQ(reports[0].p99_tbts.samples(), reports[1].p99_tbts.samples());
}

TEST(EngineBatchApiTest, ExecuteStepsMatchesSerialSteps) {
  // Drive the engine's batch API directly: N requests prefilled then
  // decoded in lockstep batches must emit exactly the tokens of the
  // one-by-one serial engine.
  const ModelConfig cfg = ModelConfig::Tiny();
  constexpr int32_t kRequests = 6;
  constexpr int32_t kDecodes = 8;

  auto run = [&](int32_t num_threads, bool batched) {
    RuntimeConfig rt;
    rt.num_threads = num_threads;
    InferenceEngine engine(cfg, 42, 128, 8, rt);
    Rng prompt_rng(7);
    for (int32_t id = 0; id < kRequests; ++id) {
      std::vector<int32_t> prompt(4 + id);
      for (int32_t& t : prompt) {
        t = static_cast<int32_t>(prompt_rng.UniformInt(0, cfg.vocab_size - 1));
      }
      const CacheType type =
          id % 2 == 0 ? CacheType::kKV : CacheType::kHidden;
      EXPECT_TRUE(engine.AddRequest(id, std::move(prompt), type).ok());
    }
    if (batched) {
      std::vector<PendingStep> steps;
      for (int32_t id = 0; id < kRequests; ++id) {
        auto s = engine.PreparePrefillChunk(id, 1 << 20);
        EXPECT_TRUE(s.ok());
        steps.push_back(std::move(*s));
      }
      EXPECT_TRUE(engine.ExecuteSteps(&steps).ok());
      for (int32_t d = 0; d < kDecodes; ++d) {
        std::vector<PendingStep> batch;
        for (int32_t id = 0; id < kRequests; ++id) {
          auto s = engine.PrepareDecode(id);
          EXPECT_TRUE(s.ok());
          batch.push_back(std::move(*s));
        }
        EXPECT_TRUE(engine.ExecuteSteps(&batch).ok());
      }
    } else {
      for (int32_t id = 0; id < kRequests; ++id) {
        EXPECT_TRUE(engine.Prefill(id).ok());
      }
      for (int32_t d = 0; d < kDecodes; ++d) {
        for (int32_t id = 0; id < kRequests; ++id) {
          EXPECT_TRUE(engine.DecodeStep(id).ok());
        }
      }
    }
    std::vector<std::vector<int32_t>> tokens;
    for (int32_t id = 0; id < kRequests; ++id) {
      tokens.push_back(engine.Find(id)->tokens);
    }
    return tokens;
  };

  const auto serial = run(1, /*batched=*/false);
  const auto batched_serial = run(1, /*batched=*/true);
  const auto batched_parallel = run(4, /*batched=*/true);
  EXPECT_EQ(serial, batched_serial);
  EXPECT_EQ(serial, batched_parallel);
}

}  // namespace
}  // namespace aptserve
