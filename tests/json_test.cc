// Strict JSON parser (common/json.h): value-level unit tests, strictness
// rejections, Dump round-trips — including over every committed
// bench/results/BENCH_*.json snapshot, which is the concrete corpus the
// sweep harness has to read back losslessly.
#include "common/json.h"

#include <gtest/gtest.h>

#include <dirent.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

namespace aptserve {
namespace json {
namespace {

JsonValue ParseOk(const std::string& text) {
  auto parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << text << " -> " << parsed.status().ToString();
  return parsed.ok() ? *parsed : JsonValue();
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(ParseOk("null").is_null());
  EXPECT_TRUE(ParseOk("true").bool_value());
  EXPECT_FALSE(ParseOk("false").bool_value());
  EXPECT_DOUBLE_EQ(ParseOk("0").number_value(), 0.0);
  EXPECT_DOUBLE_EQ(ParseOk("-17").number_value(), -17.0);
  EXPECT_DOUBLE_EQ(ParseOk("3.25e2").number_value(), 325.0);
  EXPECT_DOUBLE_EQ(ParseOk("1e-3").number_value(), 0.001);
  EXPECT_EQ(ParseOk("\"hi\"").string_value(), "hi");
  EXPECT_EQ(ParseOk("  42  ").number_value(), 42.0);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(ParseOk(R"("a\"b\\c\/d")").string_value(), "a\"b\\c/d");
  EXPECT_EQ(ParseOk(R"("tab\there")").string_value(), "tab\there");
  EXPECT_EQ(ParseOk(R"("\u0041\u00e9")").string_value(), "A\xc3\xa9");
  EXPECT_EQ(ParseOk(R"("\u001f")").string_value(), "\x1f");
}

TEST(JsonParse, Containers) {
  JsonValue v = ParseOk(R"({"a": [1, 2, {"b": true}], "c": null})");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[1].number_value(), 2.0);
  EXPECT_TRUE(a->items()[2].GetBool("b", false));
  EXPECT_TRUE(v.Find("c")->is_null());
  EXPECT_EQ(v.Find("missing"), nullptr);
  // Insertion order is preserved.
  EXPECT_EQ(v.members()[0].first, "a");
  EXPECT_EQ(v.members()[1].first, "c");
}

TEST(JsonParse, StrictRejections) {
  const char* bad[] = {
      "",                       // empty input
      "{",                      // unterminated object
      "[1, 2",                  // unterminated array
      "[1,]",                   // trailing comma
      "{\"a\": 1,}",            // trailing comma in object
      "{\"a\": 1 \"b\": 2}",    // missing comma
      "{\"a\": 1, \"a\": 2}",   // duplicate key
      "{a: 1}",                 // unquoted key
      "\"unterminated",         // unterminated string
      "\"bad\\qescape\"",       // invalid escape
      "\"\\u12g4\"",            // invalid hex digit
      "012",                    // leading zero
      "+1",                     // leading plus
      ".5",                     // bare decimal point
      "1.",                     // digitless fraction
      "1e",                     // digitless exponent
      "nul",                    // truncated literal
      "True",                   // wrong case
      "1 2",                    // trailing content
      "{} []",                  // trailing container
      "\"a\tb\"",               // raw control char in string
  };
  for (const char* text : bad) {
    auto parsed = ParseJson(text);
    EXPECT_FALSE(parsed.ok()) << "should reject: " << text;
    if (!parsed.ok()) {
      EXPECT_TRUE(parsed.status().IsInvalidArgument()) << text;
    }
  }
}

TEST(JsonParse, ErrorNamesPosition) {
  auto parsed = ParseJson("{\n  \"a\": nope\n}");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("2:8"), std::string::npos)
      << parsed.status().ToString();
}

TEST(JsonDump, DeterministicAndParseable) {
  JsonValue obj = JsonValue::Object();
  obj.Set("name", JsonValue::String("a \"quoted\"\nkey"));
  obj.Set("count", JsonValue::Int(42));
  obj.Set("ratio", JsonValue::Number(0.30000000000000004));
  obj.Set("flag", JsonValue::Bool(true));
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Number(1e-9));
  arr.Append(JsonValue::Null());
  obj.Set("xs", std::move(arr));

  const std::string compact = obj.Dump();
  const std::string pretty = obj.Dump(2);
  EXPECT_EQ(compact, obj.Dump());  // byte-deterministic
  EXPECT_EQ(ParseOk(compact), obj);
  EXPECT_EQ(ParseOk(pretty), obj);
  // Numbers round-trip exactly, including non-shortest doubles.
  EXPECT_DOUBLE_EQ(ParseOk(compact).GetNumber("ratio", 0.0),
                   0.30000000000000004);
}

TEST(JsonDump, NonFiniteBecomesNull) {
  JsonValue obj = JsonValue::Object();
  obj.Set("bad", JsonValue::Number(std::numeric_limits<double>::infinity()));
  EXPECT_EQ(obj.Dump(), "{\"bad\": null}");
}

TEST(JsonValue, SetOverwritesInPlace) {
  JsonValue obj = JsonValue::Object();
  obj.Set("a", JsonValue::Int(1));
  obj.Set("b", JsonValue::Int(2));
  obj.Set("a", JsonValue::Int(3));
  ASSERT_EQ(obj.members().size(), 2u);
  EXPECT_EQ(obj.members()[0].first, "a");
  EXPECT_EQ(obj.GetInt("a", 0), 3);
}

TEST(JsonValue, EqualityIgnoresMemberOrder) {
  JsonValue a = JsonValue::Object();
  a.Set("x", JsonValue::Int(1));
  a.Set("y", JsonValue::Int(2));
  JsonValue b = JsonValue::Object();
  b.Set("y", JsonValue::Int(2));
  b.Set("x", JsonValue::Int(1));
  EXPECT_EQ(a, b);
  b.Set("y", JsonValue::Int(3));
  EXPECT_NE(a, b);
}

// Every committed bench snapshot must parse, and Dump -> parse must be the
// identity on the parsed value (the sweep collect stage depends on it).
TEST(JsonCorpus, BenchResultSnapshotsRoundTrip) {
  const std::string dir = std::string(APTSERVE_SOURCE_DIR) + "/bench/results";
  std::vector<std::string> files;
  if (DIR* d = opendir(dir.c_str())) {
    while (dirent* e = readdir(d)) {
      const std::string name = e->d_name;
      if (name.size() > 5 && name.compare(name.size() - 5, 5, ".json") == 0) {
        files.push_back(dir + "/" + name);
      }
    }
    closedir(d);
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty()) << "no committed snapshots under " << dir;
  for (const std::string& path : files) {
    auto parsed = ParseJsonFile(path);
    ASSERT_TRUE(parsed.ok()) << path << ": " << parsed.status().ToString();
    ASSERT_TRUE(parsed->is_object()) << path;
    EXPECT_NE(parsed->Find("bench"), nullptr) << path;
    EXPECT_NE(parsed->Find("entries"), nullptr) << path;
    auto reparsed = ParseJson(parsed->Dump(2));
    ASSERT_TRUE(reparsed.ok()) << path << ": " << reparsed.status().ToString();
    EXPECT_EQ(*reparsed, *parsed) << path;
  }
}

}  // namespace
}  // namespace json
}  // namespace aptserve
