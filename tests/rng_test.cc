#include "common/rng.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace aptserve {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(5.0, 10.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 10.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    hit_lo |= (v == 0);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  RunningStat s;
  for (int i = 0; i < 20000; ++i) s.Add(rng.Normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  RunningStat s;
  for (int i = 0; i < 20000; ++i) s.Add(rng.Exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(RngTest, GammaMeanAndCv) {
  Rng rng(17);
  // shape k, scale s: mean = k*s, CV = 1/sqrt(k).
  RunningStat s;
  for (int i = 0; i < 20000; ++i) s.Add(rng.Gamma(4.0, 0.5));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
  EXPECT_NEAR(s.stddev() / s.mean(), 0.5, 0.05);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(17);
  SampleSet s;
  for (int i = 0; i < 20000; ++i) s.Add(rng.LogNormal(std::log(100.0), 0.5));
  EXPECT_NEAR(s.Median(), 100.0, 5.0);
}

}  // namespace
}  // namespace aptserve
