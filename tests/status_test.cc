#include "common/status.h"

#include <gtest/gtest.h>

namespace aptserve {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::OutOfMemory("x").IsOutOfMemory());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  Status s = Status::InvalidArgument("bad block id");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad block id");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad block id");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfMemory), "Out of memory");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(StatusOrTest, HoldsValue) {
  auto r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.value(), 5);
}

TEST(StatusOrTest, HoldsError) {
  auto r = ParsePositive(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

Status ChainOk() {
  APT_RETURN_NOT_OK(Status::OK());
  APT_ASSIGN_OR_RETURN(int v, ParsePositive(3));
  (void)v;
  return Status::OK();
}

Status ChainErr() {
  APT_ASSIGN_OR_RETURN(int v, ParsePositive(-3));
  (void)v;
  return Status::Internal("unreachable");
}

TEST(StatusOrTest, Macros) {
  EXPECT_TRUE(ChainOk().ok());
  Status s = ChainErr();
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

}  // namespace
}  // namespace aptserve
