#include "sim/multi_instance.h"

#include <gtest/gtest.h>

#include "baselines/fcfs_scheduler.h"
#include "core/apt_scheduler.h"
#include "workload/trace.h"

namespace aptserve {
namespace {

CostModel Opt13() {
  const ModelSpec m = ModelSpec::Opt13B();
  return CostModel(m, ClusterSpec::ForModel(m));
}

std::vector<Request> MakeTrace(double rate, int n = 200, uint64_t seed = 6) {
  TraceConfig tc;
  tc.profile = DatasetProfile::ShareGpt();
  tc.num_requests = n;
  tc.rate_per_sec = rate;
  tc.seed = seed;
  auto t = BuildTrace(tc);
  EXPECT_TRUE(t.ok());
  return *t;
}

TEST(DispatchTest, RoundRobinCycles) {
  MultiInstanceConfig cfg;
  cfg.fleet.router.n_instances = 3;
  cfg.fleet.router.policy = RoutePolicy::kRoundRobin;
  MultiInstanceSimulator mi(Opt13(), cfg);
  auto a = mi.Dispatch(MakeTrace(2.0, 9));
  EXPECT_EQ(a, (std::vector<int32_t>{0, 1, 2, 0, 1, 2, 0, 1, 2}));
}

TEST(DispatchTest, LeastLoadedBalancesTokens) {
  MultiInstanceConfig cfg;
  cfg.fleet.router.n_instances = 2;
  cfg.fleet.router.policy = RoutePolicy::kLeastLoaded;
  MultiInstanceSimulator mi(Opt13(), cfg);
  auto trace = MakeTrace(50.0, 400);  // dense arrivals, window matters
  auto a = mi.Dispatch(trace);
  int64_t tokens[2] = {0, 0};
  for (size_t i = 0; i < trace.size(); ++i) {
    tokens[a[i]] += trace[i].prompt_len;
  }
  const double imbalance =
      std::abs(double(tokens[0]) - double(tokens[1])) /
      double(tokens[0] + tokens[1]);
  EXPECT_LT(imbalance, 0.1);
}

TEST(DispatchTest, PowerOfTwoUsesAllInstancesAndIsDeterministic) {
  MultiInstanceConfig cfg;
  cfg.fleet.router.n_instances = 4;
  cfg.fleet.router.policy = RoutePolicy::kPowerOfTwo;
  MultiInstanceSimulator mi(Opt13(), cfg);
  auto trace = MakeTrace(10.0, 200);
  auto a1 = mi.Dispatch(trace);
  auto a2 = mi.Dispatch(trace);
  EXPECT_EQ(a1, a2);  // seeded
  std::set<int32_t> used(a1.begin(), a1.end());
  EXPECT_EQ(used.size(), 4u);
}

TEST(DispatchTest, SingleInstanceAllZero) {
  MultiInstanceConfig cfg;
  cfg.fleet.router.n_instances = 1;
  MultiInstanceSimulator mi(Opt13(), cfg);
  auto a = mi.Dispatch(MakeTrace(2.0, 10));
  for (int32_t v : a) EXPECT_EQ(v, 0);
}

TEST(MultiInstanceTest, TwoInstancesSustainRoughlyTwiceTheRate) {
  const SloSpec slo{1.0, 1.0};
  // A rate that collapses one instance but should be fine split over two.
  auto trace = MakeTrace(4.0, 300, 12);

  FcfsScheduler single_sched;
  Simulator single(Opt13(), SimulatorConfig{});
  auto r1 = single.Run(trace, &single_sched, slo);
  ASSERT_TRUE(r1.ok());

  MultiInstanceConfig cfg;
  cfg.fleet.router.n_instances = 2;
  cfg.fleet.router.policy = RoutePolicy::kLeastLoaded;
  MultiInstanceSimulator mi(Opt13(), cfg);
  auto r2 = mi.Run(trace, [] { return std::make_unique<FcfsScheduler>(); },
                   slo);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_GT(r2->combined.slo_attainment, r1->report.slo_attainment + 0.2);
  EXPECT_EQ(r2->requests_per_instance[0] + r2->requests_per_instance[1],
            300);
}

TEST(MultiInstanceTest, AptOnFleetBeatsFcfsOnFleet) {
  const SloSpec slo{1.0, 1.0};
  auto trace = MakeTrace(8.0, 300, 14);
  MultiInstanceConfig cfg;
  cfg.fleet.router.n_instances = 2;
  MultiInstanceSimulator mi(Opt13(), cfg);
  auto rf = mi.Run(trace, [] { return std::make_unique<FcfsScheduler>(); },
                   slo);
  auto ra = mi.Run(trace,
                   [&] {
                     AptConfig c;
                     c.slo = slo;
                     return std::make_unique<AptScheduler>(c);
                   },
                   slo);
  ASSERT_TRUE(rf.ok() && ra.ok());
  EXPECT_GT(ra->combined.slo_attainment, rf->combined.slo_attainment);
}

TEST(MergeReportsTest, WeightsByRequestCount) {
  SloReport a, b;
  a.slo_attainment = 1.0;
  a.ttft_attainment = 1.0;
  a.tbt_attainment = 1.0;
  a.total_serving_time = 10.0;
  a.batch_limit_time_ratio = 0.5;
  a.iterations = 10;
  a.mean_batch_size = 4.0;
  a.preemptions = 1;
  a.ttfts.Add(0.1);
  b.slo_attainment = 0.5;
  b.ttft_attainment = 0.5;
  b.tbt_attainment = 0.5;
  b.total_serving_time = 30.0;
  b.batch_limit_time_ratio = 0.0;
  b.iterations = 30;
  b.mean_batch_size = 8.0;
  b.preemptions = 2;
  b.ttfts.Add(0.3);
  auto merged = MergeReports({a, b}, {100, 300});
  EXPECT_DOUBLE_EQ(merged.slo_attainment, (1.0 * 100 + 0.5 * 300) / 400);
  EXPECT_DOUBLE_EQ(merged.total_serving_time, 30.0);  // parallel max
  EXPECT_DOUBLE_EQ(merged.batch_limit_time_ratio, 5.0 / 40.0);
  EXPECT_EQ(merged.iterations, 40);
  EXPECT_DOUBLE_EQ(merged.mean_batch_size, (4.0 * 10 + 8.0 * 30) / 40);
  EXPECT_EQ(merged.preemptions, 3);
  EXPECT_EQ(merged.ttfts.count(), 2u);
}

TEST(MergeReportsTest, EmptyFleet) {
  auto merged = MergeReports({}, {});
  EXPECT_EQ(merged.slo_attainment, 0.0);
  EXPECT_EQ(merged.iterations, 0);
}

}  // namespace
}  // namespace aptserve
