#include "workload/arrival.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace aptserve {
namespace {

TEST(ArrivalTest, PoissonMeanRate) {
  Rng rng(1);
  auto arr = PoissonArrivals(4.0, 20000, &rng);
  ASSERT_TRUE(arr.ok());
  ASSERT_EQ(arr->size(), 20000u);
  // Empirical rate = n / span.
  EXPECT_NEAR(20000.0 / arr->back(), 4.0, 0.1);
}

TEST(ArrivalTest, ArrivalsAreSortedAndPositive) {
  Rng rng(2);
  auto arr = GammaArrivals(2.0, 5.0, 1000, &rng);
  ASSERT_TRUE(arr.ok());
  EXPECT_GT((*arr)[0], 0.0);
  for (size_t i = 1; i < arr->size(); ++i) {
    EXPECT_GE((*arr)[i], (*arr)[i - 1]);
  }
}

TEST(ArrivalTest, GammaCvControlsBurstiness) {
  Rng rng(3);
  auto gaps_cv = [&](double cv) {
    auto arr = GammaArrivals(2.0, cv, 30000, &rng);
    EXPECT_TRUE(arr.ok());
    RunningStat s;
    double prev = 0;
    for (double t : *arr) {
      s.Add(t - prev);
      prev = t;
    }
    return s.stddev() / s.mean();
  };
  EXPECT_NEAR(gaps_cv(1.0), 1.0, 0.05);
  EXPECT_NEAR(gaps_cv(5.0), 5.0, 0.35);
  EXPECT_NEAR(gaps_cv(10.0), 10.0, 1.0);
}

TEST(ArrivalTest, Cv1MatchesPoissonStatistics) {
  Rng a(7), b(7);
  auto p = PoissonArrivals(3.0, 1000, &a);
  auto g = GammaArrivals(3.0, 1.0, 1000, &b);
  ASSERT_TRUE(p.ok() && g.ok());
  // Identical seeds and equivalent processes produce identical streams
  // (Poisson delegates to Gamma with cv = 1).
  EXPECT_EQ(*p, *g);
}

TEST(ArrivalTest, InputValidation) {
  Rng rng(1);
  EXPECT_TRUE(PoissonArrivals(0.0, 10, &rng).status().IsInvalidArgument());
  EXPECT_TRUE(GammaArrivals(1.0, 0.0, 10, &rng).status().IsInvalidArgument());
  EXPECT_TRUE(GammaArrivals(1.0, 1.0, -1, &rng).status().IsInvalidArgument());
  auto empty = GammaArrivals(1.0, 1.0, 0, &rng);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

}  // namespace
}  // namespace aptserve
