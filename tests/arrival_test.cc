#include "workload/arrival.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace aptserve {
namespace {

TEST(ArrivalTest, PoissonMeanRate) {
  Rng rng(1);
  auto arr = PoissonArrivals(4.0, 20000, &rng);
  ASSERT_TRUE(arr.ok());
  ASSERT_EQ(arr->size(), 20000u);
  // Empirical rate = n / span.
  EXPECT_NEAR(20000.0 / arr->back(), 4.0, 0.1);
}

TEST(ArrivalTest, ArrivalsAreSortedAndPositive) {
  Rng rng(2);
  auto arr = GammaArrivals(2.0, 5.0, 1000, &rng);
  ASSERT_TRUE(arr.ok());
  EXPECT_GT((*arr)[0], 0.0);
  for (size_t i = 1; i < arr->size(); ++i) {
    EXPECT_GE((*arr)[i], (*arr)[i - 1]);
  }
}

TEST(ArrivalTest, GammaCvControlsBurstiness) {
  Rng rng(3);
  auto gaps_cv = [&](double cv) {
    auto arr = GammaArrivals(2.0, cv, 30000, &rng);
    EXPECT_TRUE(arr.ok());
    RunningStat s;
    double prev = 0;
    for (double t : *arr) {
      s.Add(t - prev);
      prev = t;
    }
    return s.stddev() / s.mean();
  };
  EXPECT_NEAR(gaps_cv(1.0), 1.0, 0.05);
  EXPECT_NEAR(gaps_cv(5.0), 5.0, 0.35);
  EXPECT_NEAR(gaps_cv(10.0), 10.0, 1.0);
}

TEST(ArrivalTest, Cv1MatchesPoissonStatistics) {
  Rng a(7), b(7);
  auto p = PoissonArrivals(3.0, 1000, &a);
  auto g = GammaArrivals(3.0, 1.0, 1000, &b);
  ASSERT_TRUE(p.ok() && g.ok());
  // Identical seeds and equivalent processes produce identical streams
  // (Poisson delegates to Gamma with cv = 1).
  EXPECT_EQ(*p, *g);
}

TEST(ArrivalTest, InputValidation) {
  Rng rng(1);
  EXPECT_TRUE(PoissonArrivals(0.0, 10, &rng).status().IsInvalidArgument());
  EXPECT_TRUE(GammaArrivals(1.0, 0.0, 10, &rng).status().IsInvalidArgument());
  EXPECT_TRUE(GammaArrivals(1.0, 1.0, -1, &rng).status().IsInvalidArgument());
  auto empty = GammaArrivals(1.0, 1.0, 0, &rng);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(DiurnalArrivalTest, DeterministicSortedAndRateShaped) {
  DiurnalProfile profile;
  profile.base_rate = 1.0;
  profile.peak_rate = 10.0;
  profile.period_s = 100.0;
  Rng a(7), b(7);
  auto first = DiurnalArrivals(profile, {}, 1.0, 600, &a);
  auto second = DiurnalArrivals(profile, {}, 1.0, 600, &b);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(*first, *second);  // seeded determinism
  EXPECT_TRUE(std::is_sorted(first->begin(), first->end()));

  // Trough at phase 0, peak at half-period: the peak-centred window must
  // see several times the trough-centred window's arrivals.
  const auto count_in = [&](double lo, double hi) {
    int64_t n = 0;
    for (double t : *first) n += (t >= lo && t < hi) ? 1 : 0;
    return n;
  };
  const int64_t peak = count_in(40.0, 60.0);
  const int64_t trough = count_in(0.0, 10.0) + count_in(90.0, 100.0);
  EXPECT_GT(peak, 2 * std::max<int64_t>(trough, 1));
}

TEST(DiurnalArrivalTest, FlashCrowdSpikesTheWindow) {
  DiurnalProfile profile;
  profile.base_rate = 2.0;
  profile.peak_rate = 2.0001;  // essentially flat: isolate the crowd
  profile.period_s = 200.0;
  FlashCrowd crowd;
  crowd.start_s = 50.0;
  crowd.duration_s = 20.0;
  crowd.multiplier = 5.0;
  Rng rng(11);
  auto arrivals = DiurnalArrivals(profile, {crowd}, 1.0, 500, &rng);
  ASSERT_TRUE(arrivals.ok());
  int64_t in_crowd = 0, before = 0;
  for (double t : *arrivals) {
    in_crowd += (t >= 50.0 && t < 70.0) ? 1 : 0;
    before += (t >= 20.0 && t < 40.0) ? 1 : 0;
  }
  // Same window length; the crowd multiplies the rate by 5.
  EXPECT_GT(in_crowd, 3 * std::max<int64_t>(before, 1));
}

TEST(DiurnalArrivalTest, ComposesWithBurstinessAndValidates) {
  DiurnalProfile profile;
  Rng rng(3);
  auto bursty = DiurnalArrivals(profile, {}, 4.0, 200, &rng);
  ASSERT_TRUE(bursty.ok());
  EXPECT_TRUE(std::is_sorted(bursty->begin(), bursty->end()));

  DiurnalProfile bad = profile;
  bad.base_rate = 0.0;
  EXPECT_TRUE(
      DiurnalArrivals(bad, {}, 1.0, 10, &rng).status().IsInvalidArgument());
  bad = profile;
  bad.peak_rate = bad.base_rate / 2;
  EXPECT_TRUE(
      DiurnalArrivals(bad, {}, 1.0, 10, &rng).status().IsInvalidArgument());
  EXPECT_TRUE(
      DiurnalArrivals(profile, {}, 0.0, 10, &rng).status().IsInvalidArgument());
  FlashCrowd bad_crowd;
  bad_crowd.duration_s = -1.0;
  EXPECT_TRUE(DiurnalArrivals(profile, {bad_crowd}, 1.0, 10, &rng)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace aptserve
