// Equivalence tests for the batched prefill pass (PrefillCached) and the
// engine's chunked prefill: any chunking of the prefill must produce
// exactly the same cache contents and logits as the one-token-at-a-time
// CachedStep loop, for both cache types.
#include <gtest/gtest.h>

#include "cache/block_pool.h"
#include "cache/hybrid_assigner.h"
#include "engine/block_storage.h"
#include "engine/inference_engine.h"
#include "engine/transformer.h"

namespace aptserve {
namespace {

constexpr float kTol = 2e-4f;

std::vector<int32_t> MakeTokens(int32_t n, uint64_t seed, int32_t vocab) {
  std::vector<int32_t> t(n);
  uint64_t x = seed * 1099511628211ULL + 3;
  for (int32_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    t[i] = static_cast<int32_t>(x % vocab);
  }
  return t;
}

struct CacheRig {
  explicit CacheRig(const ModelConfig& cfg, CacheType type, int32_t tokens)
      : pool(128, 4), storage(128, 4, cfg.n_layers, cfg.d_model),
        assigner(&pool) {
    Status st = assigner.CreateFilled(1, type, tokens);
    APT_CHECK_MSG(st.ok(), st.ToString());
  }
  const CacheMap& map() const { return *assigner.Find(1); }
  BlockPool pool;
  BlockStorage storage;
  HybridCacheAssigner assigner;
};

class PrefillEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<CacheType, int32_t>> {};

TEST_P(PrefillEquivalenceTest, BatchedMatchesStepLoop) {
  const auto [type, split] = GetParam();
  const ModelConfig cfg = ModelConfig::Tiny();
  TransformerModel model(ModelWeights::Random(cfg, 31));
  const auto tokens = MakeTokens(24, 5, cfg.vocab_size);

  // Reference: token-by-token CachedStep.
  CacheRig ref(cfg, type, 24);
  std::vector<float> ref_logits;
  for (int32_t pos = 0; pos < 24; ++pos) {
    ASSERT_TRUE(model
                    .CachedStep(tokens[pos], pos, ref.map(), &ref.storage,
                                &ref_logits)
                    .ok());
  }

  // Batched path, split into two passes at `split`.
  CacheRig bat(cfg, type, 24);
  std::vector<float> logits;
  if (split > 0) {
    std::vector<int32_t> first(tokens.begin(), tokens.begin() + split);
    ASSERT_TRUE(
        model.PrefillCached(first, 0, bat.map(), &bat.storage, &logits).ok());
  }
  ASSERT_TRUE(
      model.PrefillCached(tokens, split, bat.map(), &bat.storage, &logits)
          .ok());

  ASSERT_EQ(logits.size(), ref_logits.size());
  for (size_t i = 0; i < logits.size(); ++i) {
    EXPECT_NEAR(logits[i], ref_logits[i], kTol);
  }

  // A subsequent decode over the batched cache matches one over the
  // step-built cache (proves the cache contents themselves are equal).
  std::vector<float> next_ref, next_bat;
  ASSERT_TRUE(ref.assigner.Append(1, 1).ok());
  ASSERT_TRUE(bat.assigner.Append(1, 1).ok());
  ASSERT_TRUE(
      model.CachedStep(7, 24, ref.map(), &ref.storage, &next_ref).ok());
  ASSERT_TRUE(
      model.CachedStep(7, 24, bat.map(), &bat.storage, &next_bat).ok());
  for (size_t i = 0; i < next_ref.size(); ++i) {
    EXPECT_NEAR(next_bat[i], next_ref[i], kTol);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TypesAndSplits, PrefillEquivalenceTest,
    ::testing::Combine(::testing::Values(CacheType::kKV, CacheType::kHidden),
                       ::testing::Values(0, 1, 7, 12, 23)));

TEST(PrefillCachedTest, InputValidation) {
  const ModelConfig cfg = ModelConfig::Tiny();
  TransformerModel model(ModelWeights::Random(cfg, 31));
  CacheRig rig(cfg, CacheType::kKV, 8);
  std::vector<float> logits;
  EXPECT_TRUE(model.PrefillCached({}, 0, rig.map(), &rig.storage, &logits)
                  .IsInvalidArgument());
  EXPECT_TRUE(model.PrefillCached({0, 1}, 2, rig.map(), &rig.storage, &logits)
                  .IsInvalidArgument());
  EXPECT_TRUE(model.PrefillCached({0, 1}, -1, rig.map(), &rig.storage,
                                  &logits)
                  .IsInvalidArgument());
  // Map covers only 8 tokens.
  auto tokens = MakeTokens(12, 1, cfg.vocab_size);
  EXPECT_TRUE(model.PrefillCached(tokens, 0, rig.map(), &rig.storage, &logits)
                  .IsFailedPrecondition());
}

TEST(EngineChunkedPrefillTest, ChunksMatchFullPrefill) {
  const ModelConfig cfg = ModelConfig::Tiny();
  const auto prompt = MakeTokens(20, 9, cfg.vocab_size);

  InferenceEngine full(cfg, 42, 128, 4);
  ASSERT_TRUE(full.AddRequest(1, prompt, CacheType::kKV).ok());
  auto expected = full.Generate(1, 8);
  ASSERT_TRUE(expected.ok());

  for (int32_t chunk : {1, 3, 7, 19, 100}) {
    InferenceEngine eng(cfg, 42, 128, 4);
    ASSERT_TRUE(eng.AddRequest(1, prompt, CacheType::kKV).ok());
    // Drive the prefill in chunks until the first token appears.
    std::optional<int32_t> first;
    while (!first.has_value()) {
      auto r = eng.PrefillChunk(1, chunk);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      first = *r;
    }
    for (int i = 0; i < 7; ++i) ASSERT_TRUE(eng.DecodeStep(1).ok());
    EXPECT_EQ(eng.Find(1)->tokens, *expected) << "chunk=" << chunk;
  }
}

TEST(EngineChunkedPrefillTest, HiddenChunksMatchToo) {
  const ModelConfig cfg = ModelConfig::Tiny();
  const auto prompt = MakeTokens(15, 2, cfg.vocab_size);
  InferenceEngine a(cfg, 7, 128, 4), b(cfg, 7, 128, 4);
  ASSERT_TRUE(a.AddRequest(1, prompt, CacheType::kHidden).ok());
  ASSERT_TRUE(b.AddRequest(1, prompt, CacheType::kHidden).ok());
  ASSERT_TRUE(a.Prefill(1).ok());
  std::optional<int32_t> first;
  while (!first.has_value()) {
    auto r = b.PrefillChunk(1, 4);
    ASSERT_TRUE(r.ok());
    first = *r;
  }
  EXPECT_EQ(a.Find(1)->tokens, b.Find(1)->tokens);
}

TEST(EngineChunkedPrefillTest, ChunkValidation) {
  const ModelConfig cfg = ModelConfig::Tiny();
  InferenceEngine eng(cfg, 42, 128, 4);
  ASSERT_TRUE(
      eng.AddRequest(1, MakeTokens(8, 1, cfg.vocab_size), CacheType::kKV)
          .ok());
  EXPECT_TRUE(eng.PrefillChunk(1, 0).status().IsInvalidArgument());
  EXPECT_TRUE(eng.PrefillChunk(2, 4).status().IsNotFound());
  ASSERT_TRUE(eng.Prefill(1).ok());
  EXPECT_TRUE(eng.PrefillChunk(1, 4).status().IsFailedPrecondition());
}

TEST(EngineSamplingTest, StochasticGenerationIsSeededDeterministic) {
  const ModelConfig cfg = ModelConfig::Tiny();
  const auto prompt = MakeTokens(6, 3, cfg.vocab_size);
  InferenceEngine a(cfg, 42, 128, 4), b(cfg, 42, 128, 4), c(cfg, 42, 128, 4);
  for (auto* e : {&a, &b, &c}) {
    ASSERT_TRUE(e->AddRequest(1, prompt, CacheType::kKV).ok());
  }
  a.SetSampling(SamplingParams::TopK(8, 0.9), 123);
  b.SetSampling(SamplingParams::TopK(8, 0.9), 123);
  c.SetSampling(SamplingParams::TopK(8, 0.9), 456);
  auto ta = a.Generate(1, 12);
  auto tb = b.Generate(1, 12);
  auto tc = c.Generate(1, 12);
  ASSERT_TRUE(ta.ok() && tb.ok() && tc.ok());
  EXPECT_EQ(*ta, *tb);   // same sampling seed -> same text
  EXPECT_NE(*ta, *tc);   // different seed -> (almost surely) different
}

}  // namespace
}  // namespace aptserve
