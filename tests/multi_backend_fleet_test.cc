// MultiInstanceRunner composes with any ExecutionBackend: the same
// dispatch policies shard the analytic CostModelBackend (the legacy
// MultiInstanceSimulator path) and the real-engine InferenceBackend —
// which before the serve/ refactor was impossible (sharding was wired to
// the simulator only).
#include <gtest/gtest.h>

#include <memory>

#include "baselines/fcfs_scheduler.h"
#include "serve/cost_model_backend.h"
#include "serve/inference_backend.h"
#include "serve/multi_instance.h"
#include "sim/multi_instance.h"
#include "workload/trace.h"

namespace aptserve {
namespace {

CostModel Opt13() {
  const ModelSpec m = ModelSpec::Opt13B();
  return CostModel(m, ClusterSpec::ForModel(m));
}

std::vector<Request> MakeTrace(double rate, int n, uint64_t seed = 6) {
  TraceConfig tc;
  tc.profile = DatasetProfile::ShareGpt();
  tc.num_requests = n;
  tc.rate_per_sec = rate;
  tc.seed = seed;
  auto t = BuildTrace(tc);
  EXPECT_TRUE(t.ok());
  return *t;
}

TEST(MultiBackendFleetTest, RunnerMatchesSimulatorFacade) {
  // The generic runner with CostModelBackend factories must reproduce the
  // MultiInstanceSimulator facade exactly (same backends, same loop).
  const SloSpec slo{1.0, 1.0};
  const CostModel cm = Opt13();
  const auto trace = MakeTrace(4.0, 120, 12);

  MultiInstanceConfig cfg;
  cfg.fleet.router.n_instances = 2;
  MultiInstanceSimulator facade(cm, cfg);
  auto facade_result =
      facade.Run(trace, [] { return std::make_unique<FcfsScheduler>(); }, slo);
  ASSERT_TRUE(facade_result.ok()) << facade_result.status().ToString();

  DispatchConfig dispatch;
  dispatch.n_instances = 2;
  MultiInstanceRunner runner(dispatch, ServingLoopConfig{});
  auto runner_result = runner.Run(
      trace, [] { return std::make_unique<FcfsScheduler>(); },
      [&](int32_t) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
        APT_ASSIGN_OR_RETURN(
            std::unique_ptr<CostModelBackend> backend,
            CostModelBackend::Create(cm, CostModelBackend::Options{}));
        return std::unique_ptr<ExecutionBackend>(std::move(backend));
      },
      slo);
  ASSERT_TRUE(runner_result.ok()) << runner_result.status().ToString();

  EXPECT_EQ(facade_result->combined.total_serving_time,
            runner_result->combined.total_serving_time);
  EXPECT_EQ(facade_result->combined.iterations,
            runner_result->combined.iterations);
  EXPECT_EQ(facade_result->combined.slo_attainment,
            runner_result->combined.slo_attainment);
  EXPECT_EQ(facade_result->requests_per_instance,
            runner_result->requests_per_instance);
}

TEST(MultiBackendFleetTest, InferenceBackendFleetServesAllRequests) {
  // Shard a burst of tiny requests across two *real-engine* instances.
  std::vector<Request> trace;
  Rng rng(5);
  for (int32_t i = 0; i < 12; ++i) {
    Request r;
    r.id = i;
    r.prompt_len = static_cast<int32_t>(rng.UniformInt(4, 16));
    r.output_len = static_cast<int32_t>(rng.UniformInt(2, 8));
    r.arrival = 0.01 * i;
    trace.push_back(r);
  }

  DispatchConfig dispatch;
  dispatch.n_instances = 2;
  dispatch.policy = DispatchPolicy::kRoundRobin;
  ServingLoopConfig loop;
  loop.max_batch_size = INT32_MAX;
  MultiInstanceRunner runner(dispatch, loop);
  auto result = runner.Run(
      trace, [] { return std::make_unique<FcfsScheduler>(); },
      [](int32_t instance) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
        InferenceBackendOptions options;
        options.virtual_timing = true;
        return std::unique_ptr<ExecutionBackend>(
            std::make_unique<InferenceBackend>(
                ModelConfig::Tiny(), /*weight_seed=*/42 + instance,
                /*num_blocks=*/96, /*block_size=*/8, SamplingParams{},
                options));
      },
      SloSpec{5.0, 5.0});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->requests_per_instance[0], 6);
  EXPECT_EQ(result->requests_per_instance[1], 6);
  // Every request produced a first token on some instance.
  EXPECT_EQ(result->combined.ttfts.count(), 12u);
}

}  // namespace
}  // namespace aptserve
