// Engine-side swap: the cached vectors physically round-trip through the
// host staging buffer and generation resumes bit-identically — the payload
// counterpart of the simulator's swap-preemption accounting.
#include <gtest/gtest.h>

#include "engine/inference_engine.h"

namespace aptserve {
namespace {

ModelConfig Cfg() { return ModelConfig::Tiny(); }

std::vector<int32_t> Prompt(int32_t n) {
  std::vector<int32_t> p(n);
  for (int32_t i = 0; i < n; ++i) p[i] = (5 + i * 11) % Cfg().vocab_size;
  return p;
}

class EngineSwapTest : public ::testing::TestWithParam<CacheType> {};

TEST_P(EngineSwapTest, SwapRoundTripPreservesGeneration) {
  // Reference: uninterrupted generation.
  InferenceEngine ref(Cfg(), 11, 128, 4);
  ASSERT_TRUE(ref.AddRequest(1, Prompt(10), GetParam()).ok());
  auto expected = ref.Generate(1, 12);
  ASSERT_TRUE(expected.ok());

  // Same run with a swap-out/in after 6 tokens.
  InferenceEngine eng(Cfg(), 11, 128, 4);
  ASSERT_TRUE(eng.AddRequest(1, Prompt(10), GetParam()).ok());
  ASSERT_TRUE(eng.Generate(1, 6).ok());
  ASSERT_TRUE(eng.SwapOut(1).ok());
  EXPECT_TRUE(eng.IsSwappedOut(1));
  EXPECT_EQ(eng.pool().num_allocated(), 0);  // GPU blocks freed
  // Decoding and prefilling are rejected while swapped.
  EXPECT_TRUE(eng.DecodeStep(1).status().IsFailedPrecondition());
  EXPECT_TRUE(eng.Prefill(1).status().IsFailedPrecondition());
  ASSERT_TRUE(eng.SwapIn(1).ok());
  EXPECT_FALSE(eng.IsSwappedOut(1));
  ASSERT_TRUE(eng.Generate(1, 6).ok());
  EXPECT_EQ(eng.Find(1)->tokens, *expected);
}

INSTANTIATE_TEST_SUITE_P(Types, EngineSwapTest,
                         ::testing::Values(CacheType::kKV,
                                           CacheType::kHidden),
                         [](const auto& info) {
                           return std::string(CacheTypeName(info.param));
                         });

TEST(EngineSwapTest, SwapFreesGpuForOtherRequests) {
  // Pool fits one 16-token KV cache (8 blocks of size 4).
  InferenceEngine eng(Cfg(), 11, 8, 4);
  ASSERT_TRUE(eng.AddRequest(1, Prompt(14), CacheType::kKV).ok());
  ASSERT_TRUE(eng.Prefill(1).ok());
  ASSERT_TRUE(eng.AddRequest(2, Prompt(14), CacheType::kKV).ok());
  EXPECT_TRUE(eng.Prefill(2).status().IsOutOfMemory());
  ASSERT_TRUE(eng.SwapOut(1).ok());
  EXPECT_TRUE(eng.Prefill(2).ok());  // fits now
  // Swap-in fails while request 2 holds the pool, then succeeds after.
  EXPECT_TRUE(eng.SwapIn(1).IsOutOfMemory());
  EXPECT_TRUE(eng.IsSwappedOut(1));  // copy retained on failure
  ASSERT_TRUE(eng.RemoveRequest(2).ok());
  EXPECT_TRUE(eng.SwapIn(1).ok());
  EXPECT_TRUE(eng.DecodeStep(1).ok());
}

TEST(EngineSwapTest, ApiErrors) {
  InferenceEngine eng(Cfg(), 11, 64, 4);
  EXPECT_TRUE(eng.SwapOut(9).IsNotFound());
  EXPECT_TRUE(eng.SwapIn(9).IsNotFound());
  ASSERT_TRUE(eng.AddRequest(1, Prompt(6), CacheType::kKV).ok());
  EXPECT_TRUE(eng.SwapOut(1).IsFailedPrecondition());  // no cache yet
  EXPECT_TRUE(eng.SwapIn(1).IsFailedPrecondition());   // not swapped
  ASSERT_TRUE(eng.Prefill(1).ok());
  ASSERT_TRUE(eng.SwapOut(1).ok());
  EXPECT_TRUE(eng.SwapOut(1).IsAlreadyExists());
}

TEST(EngineSwapTest, ConversionInvalidatesSwapCopy) {
  InferenceEngine eng(Cfg(), 11, 64, 4);
  ASSERT_TRUE(eng.AddRequest(1, Prompt(6), CacheType::kKV).ok());
  ASSERT_TRUE(eng.Prefill(1).ok());
  ASSERT_TRUE(eng.SwapOut(1).ok());
  ASSERT_TRUE(eng.ConvertCacheType(1, CacheType::kHidden).ok());
  EXPECT_FALSE(eng.IsSwappedOut(1));
  EXPECT_TRUE(eng.SwapIn(1).IsFailedPrecondition());
  // The request recovers via a normal prefill in the new type.
  EXPECT_TRUE(eng.Prefill(1).ok());
}

TEST(EngineSwapTest, PreemptDiscardsSwapCopy) {
  InferenceEngine eng(Cfg(), 11, 64, 4);
  ASSERT_TRUE(eng.AddRequest(1, Prompt(6), CacheType::kHidden).ok());
  ASSERT_TRUE(eng.Prefill(1).ok());
  ASSERT_TRUE(eng.SwapOut(1).ok());
  ASSERT_TRUE(eng.Preempt(1).ok());
  EXPECT_FALSE(eng.IsSwappedOut(1));
  EXPECT_TRUE(eng.Prefill(1).ok());
}

}  // namespace
}  // namespace aptserve
