#include "engine/ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "engine/tensor.h"

namespace aptserve {
namespace {

TEST(OpsTest, MatVec) {
  // W = [[1,2],[3,4],[5,6]], x = [1, -1] -> y = [-1, -1, -1].
  const float w[] = {1, 2, 3, 4, 5, 6};
  const float x[] = {1, -1};
  float y[3];
  ops::MatVec(w, x, y, 3, 2);
  EXPECT_FLOAT_EQ(y[0], -1);
  EXPECT_FLOAT_EQ(y[1], -1);
  EXPECT_FLOAT_EQ(y[2], -1);
}

TEST(OpsTest, MatVecTransposed) {
  // W^T x with W [3,2], x of 3 elements.
  const float w[] = {1, 2, 3, 4, 5, 6};
  const float x[] = {1, 1, 1};
  float y[2];
  ops::MatVecTransposed(w, x, y, 3, 2);
  EXPECT_FLOAT_EQ(y[0], 9);   // 1+3+5
  EXPECT_FLOAT_EQ(y[1], 12);  // 2+4+6
}

TEST(OpsTest, AddAndScaleInPlace) {
  float x[] = {1, 2, 3};
  const float y[] = {10, 20, 30};
  ops::AddInPlace(x, y, 3);
  EXPECT_FLOAT_EQ(x[1], 22);
  ops::ScaleInPlace(x, 0.5f, 3);
  EXPECT_FLOAT_EQ(x[1], 11);
}

TEST(OpsTest, Dot) {
  const float a[] = {1, 2, 3};
  const float b[] = {4, 5, 6};
  EXPECT_FLOAT_EQ(ops::Dot(a, b, 3), 32);
}

TEST(OpsTest, SoftmaxNormalizesAndOrders) {
  float x[] = {1.0f, 2.0f, 3.0f};
  ops::Softmax(x, 3);
  EXPECT_NEAR(x[0] + x[1] + x[2], 1.0f, 1e-6);
  EXPECT_LT(x[0], x[1]);
  EXPECT_LT(x[1], x[2]);
}

TEST(OpsTest, SoftmaxNumericallyStableForLargeInputs) {
  float x[] = {1000.0f, 1000.0f};
  ops::Softmax(x, 2);
  EXPECT_NEAR(x[0], 0.5f, 1e-6);
  EXPECT_NEAR(x[1], 0.5f, 1e-6);
}

TEST(OpsTest, SoftmaxSingleElement) {
  float x[] = {42.0f};
  ops::Softmax(x, 1);
  EXPECT_FLOAT_EQ(x[0], 1.0f);
}

TEST(OpsTest, LayerNormZeroMeanUnitVariance) {
  const float x[] = {1, 2, 3, 4};
  const float gain[] = {1, 1, 1, 1};
  const float bias[] = {0, 0, 0, 0};
  float out[4];
  ops::LayerNorm(x, gain, bias, out, 4);
  float mean = std::accumulate(out, out + 4, 0.0f) / 4;
  EXPECT_NEAR(mean, 0.0f, 1e-6);
  float var = 0;
  for (float v : out) var += v * v;
  EXPECT_NEAR(var / 4, 1.0f, 1e-3);
}

TEST(OpsTest, LayerNormGainBias) {
  const float x[] = {-1, 1};
  const float gain[] = {2, 2};
  const float bias[] = {5, 5};
  float out[2];
  ops::LayerNorm(x, gain, bias, out, 2);
  EXPECT_NEAR(out[0], 5 - 2.0f, 1e-4);
  EXPECT_NEAR(out[1], 5 + 2.0f, 1e-4);
}

TEST(OpsTest, ReluClamps) {
  float x[] = {-2, 0, 3};
  ops::Relu(x, 3);
  EXPECT_FLOAT_EQ(x[0], 0);
  EXPECT_FLOAT_EQ(x[1], 0);
  EXPECT_FLOAT_EQ(x[2], 3);
}

TEST(OpsTest, GeluShape) {
  float x[] = {-10.0f, 0.0f, 10.0f, 1.0f};
  ops::Gelu(x, 4);
  EXPECT_NEAR(x[0], 0.0f, 1e-3);   // large negative -> ~0
  EXPECT_FLOAT_EQ(x[1], 0.0f);
  EXPECT_NEAR(x[2], 10.0f, 1e-3);  // large positive -> identity
  EXPECT_NEAR(x[3], 0.8412f, 1e-3);
}

TEST(OpsTest, ArgMaxFirstOnTies) {
  const float x[] = {1, 5, 5, 2};
  EXPECT_EQ(ops::ArgMax(x, 4), 1);
  const float y[] = {-3};
  EXPECT_EQ(ops::ArgMax(y, 1), 0);
}

TEST(TensorTest, ShapeAndFill) {
  Tensor t({2, 3});
  EXPECT_EQ(t.NumElements(), 6);
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(1), 3);
  t.Fill(2.5f);
  EXPECT_FLOAT_EQ(t.at(5), 2.5f);
}

TEST(TensorTest, RowAccess) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_FLOAT_EQ(t.Row(1)[0], 3);
  t.Row(0)[2] = 9;
  EXPECT_FLOAT_EQ(t.at(2), 9);
}

TEST(TensorDeathTest, ShapeMismatchAborts) {
  EXPECT_DEATH(Tensor({2, 2}, {1.0f}), "does not match");
}

}  // namespace
}  // namespace aptserve
