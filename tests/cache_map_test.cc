#include "cache/cache_map.h"

#include <gtest/gtest.h>

namespace aptserve {
namespace {

TEST(CacheMapTest, KvComponents) {
  CacheMap map(CacheType::kKV, 4);
  auto comps = map.Components();
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], CacheComponent::kKey);
  EXPECT_EQ(comps[1], CacheComponent::kValue);
}

TEST(CacheMapTest, HiddenComponents) {
  CacheMap map(CacheType::kHidden, 4);
  auto comps = map.Components();
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0], CacheComponent::kHidden);
}

TEST(CacheMapTest, SlotResolution) {
  CacheMap map(CacheType::kKV, 4);
  map.AppendBlocks(CacheComponent::kKey, {10, 20});
  map.AppendBlocks(CacheComponent::kValue, {11, 21});
  EXPECT_EQ(map.capacity(), 8);
  map.AdvanceTokens(6);
  EXPECT_EQ(map.num_tokens(), 6);

  BlockSlot s = map.Slot(CacheComponent::kKey, 0);
  EXPECT_EQ(s.block, 10);
  EXPECT_EQ(s.offset, 0);
  s = map.Slot(CacheComponent::kKey, 5);
  EXPECT_EQ(s.block, 20);
  EXPECT_EQ(s.offset, 1);
  s = map.Slot(CacheComponent::kValue, 3);
  EXPECT_EQ(s.block, 11);
  EXPECT_EQ(s.offset, 3);
}

TEST(CacheMapTest, HiddenSlotResolution) {
  CacheMap map(CacheType::kHidden, 3);
  map.AppendBlocks(CacheComponent::kHidden, {7});
  map.AdvanceTokens(2);
  BlockSlot s = map.Slot(CacheComponent::kHidden, 1);
  EXPECT_EQ(s.block, 7);
  EXPECT_EQ(s.offset, 1);
}

TEST(CacheMapTest, AllBlocksAndTotals) {
  CacheMap map(CacheType::kKV, 4);
  map.AppendBlocks(CacheComponent::kKey, {1, 2});
  map.AppendBlocks(CacheComponent::kValue, {3, 4});
  EXPECT_EQ(map.TotalBlocks(), 4);
  auto all = map.AllBlocks();
  EXPECT_EQ(all.size(), 4u);
}

TEST(CacheMapDeathTest, AdvancePastCapacityAborts) {
  CacheMap map(CacheType::kHidden, 4);
  map.AppendBlocks(CacheComponent::kHidden, {0});
  EXPECT_DEATH(map.AdvanceTokens(5), "capacity");
}

TEST(CacheMapDeathTest, SlotOutOfRangeAborts) {
  CacheMap map(CacheType::kHidden, 4);
  map.AppendBlocks(CacheComponent::kHidden, {0});
  map.AdvanceTokens(2);
  EXPECT_DEATH(map.Slot(CacheComponent::kHidden, 2), "out of range");
}

}  // namespace
}  // namespace aptserve
