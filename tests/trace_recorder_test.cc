// TraceRecorder: concurrent emit/flush churn (the suite runs under TSan in
// CI), virtual-timestamp determinism of instrumented fleet runs across
// runtime thread counts, and the Chrome trace_event JSON round-trip
// (export -> validate, flow arrows and scale events included).
#include "obs/trace_recorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/fcfs_scheduler.h"
#include "obs/chrome_trace.h"
#include "obs/metrics_registry.h"
#include "serve/fleet_controller.h"
#include "serve/inference_backend.h"
#include "sim/cost_model.h"
#include "workload/request.h"

namespace aptserve::obs {
namespace {

TEST(TraceRecorderTest, EmitFlushRoundTrip) {
  TraceRecorder rec;
  TraceSink sink = rec.MakeSink(0);
  ASSERT_TRUE(static_cast<bool>(sink));
  sink.Instant(TraceOp::kArrival, 1.0, /*id=*/7);
  sink.Span(TraceOp::kIteration, 2.0, 0.5, /*id=*/-1, 3.0, 1.0);
  const uint64_t flow = sink.FlowBegin(TraceOp::kMigrationExport, 3.0, 7, 4.0);
  EXPECT_GT(flow, 0u);
  sink.FlowEnd(TraceOp::kMigrationImport, 3.5, 7, flow, 1.0, 16.0);

  const auto events = rec.Flush();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].op, TraceOp::kArrival);
  EXPECT_EQ(events[0].kind, EventKind::kInstant);
  EXPECT_EQ(events[0].id, 7);
  EXPECT_EQ(events[1].kind, EventKind::kSpan);
  EXPECT_DOUBLE_EQ(events[1].dur, 0.5);
  EXPECT_EQ(events[2].kind, EventKind::kFlowBegin);
  EXPECT_EQ(events[3].kind, EventKind::kFlowEnd);
  EXPECT_EQ(events[2].flow, flow);
  EXPECT_EQ(events[3].flow, flow);
  EXPECT_EQ(rec.TotalEmitted(), 4u);
  EXPECT_EQ(rec.TotalDropped(), 0u);
  // A second flush is empty: the first one drained the shard.
  EXPECT_TRUE(rec.Flush().empty());
}

TEST(TraceRecorderTest, DetachedSinkIsInert) {
  TraceSink off;
  EXPECT_FALSE(static_cast<bool>(off));
  off.Instant(TraceOp::kArrival, 1.0, 1);
  off.Span(TraceOp::kIteration, 1.0, 1.0, 1);
  EXPECT_EQ(off.FlowBegin(TraceOp::kShed, 1.0, 1), 0u);
  off.FlowEnd(TraceOp::kShed, 1.0, 1, 0);
}

TEST(TraceRecorderTest, RingOverwritesOldestAndCountsDrops) {
  TraceRecorder rec(/*shard_capacity=*/8);
  TraceSink sink = rec.MakeSink(0);
  for (int i = 0; i < 20; ++i) {
    sink.Instant(TraceOp::kDecodeStep, static_cast<double>(i), i);
  }
  const auto events = rec.Flush();
  ASSERT_EQ(events.size(), 8u);
  // The retained window is the most recent events, in emission order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, static_cast<int64_t>(12 + i));
  }
  EXPECT_EQ(rec.TotalEmitted(), 20u);
  EXPECT_EQ(rec.TotalDropped(), 12u);
}

TEST(TraceRecorderTest, ConcurrentEmitFlushChurn) {
  TraceRecorder rec(/*shard_capacity=*/64);
  TraceSink shared = rec.MakeSink(100);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TraceSink own = rec.MakeSink(t);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        own.Instant(TraceOp::kDecodeStep, static_cast<double>(i), i);
        shared.Instant(TraceOp::kShed, static_cast<double>(i), i,
                       static_cast<double>(t));
        if (i % 16 == 0) {
          const uint64_t flow =
              own.FlowBegin(TraceOp::kMigrationExport, i, i);
          shared.FlowEnd(TraceOp::kMigrationImport, i + 0.5, i, flow);
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Flush concurrently with the emitters: collected + still-buffered +
  // ring-dropped must conserve every emitted event.
  uint64_t collected = 0;
  for (int round = 0; round < 50; ++round) {
    collected += rec.Flush().size();
  }
  for (auto& th : threads) th.join();
  collected += rec.Flush().size();
  EXPECT_EQ(collected + rec.TotalDropped(), rec.TotalEmitted());
  EXPECT_GT(collected, 0u);
}

// ---- Instrumented fleet runs ----------------------------------------------

std::vector<Request> BurstTrace(int32_t n) {
  std::vector<Request> trace;
  for (int32_t i = 0; i < n; ++i) {
    Request r;
    r.id = i;
    r.prompt_len = 64 + (i % 5) * 4;
    r.output_len = 6 + (i % 3) * 2;
    r.arrival = 0.01 * i;
    trace.push_back(r);
  }
  return trace;
}

BackendFactory EngineBackends() {
  return [](int32_t instance) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
    InferenceBackendOptions options;
    options.virtual_timing = true;
    return std::unique_ptr<ExecutionBackend>(
        std::make_unique<InferenceBackend>(
            ModelConfig::Tiny(), /*weight_seed=*/42, /*num_blocks=*/128,
            /*block_size=*/8, SamplingParams{}, options));
  };
}

FleetConfig ElasticConfig(int32_t fleet_threads) {
  FleetConfig cfg;
  cfg.router.n_instances = 2;
  cfg.router.policy = RoutePolicy::kLeastOutstandingWork;
  cfg.min_instances = 2;
  cfg.max_instances = 3;
  cfg.tick_interval_s = 0.25;
  cfg.instance_warmup_s = 0.1;
  cfg.scale_up_cooldown_s = 0.25;
  cfg.scale_down_cooldown_s = 1.0;
  cfg.scaling = {ScalingRule::QueueDepth(1.0, 0.1)};
  cfg.enable_migration = true;
  cfg.migration_imbalance_threshold = 2.0;
  cfg.runtime.num_threads = fleet_threads;
  return cfg;
}

std::vector<TraceEvent> RunInstrumentedFleet(int32_t fleet_threads) {
  const ModelSpec m = ModelSpec::Opt13B();
  const CostModel cm(m, ClusterSpec::ForModel(m));
  TraceRecorder rec;
  MetricsRegistry reg;
  FleetConfig cfg = ElasticConfig(fleet_threads);
  cfg.trace = &rec;
  cfg.metrics = &reg;
  FleetController controller(cfg, &cm);
  auto result = controller.Run(
      BurstTrace(32), [] { return std::make_unique<FcfsScheduler>(); },
      EngineBackends(), SloSpec{5.0, 5.0});
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return rec.Flush();
}

TEST(TraceRecorderTest, VirtualTimestampsDeterministicAcrossThreadCounts) {
  const std::vector<TraceEvent> serial = RunInstrumentedFleet(1);
  const std::vector<TraceEvent> threaded = RunInstrumentedFleet(4);
  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(serial.size(), threaded.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    const TraceEvent& a = serial[i];
    const TraceEvent& b = threaded[i];
    EXPECT_EQ(static_cast<int>(a.op), static_cast<int>(b.op)) << i;
    EXPECT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind)) << i;
    EXPECT_EQ(a.track, b.track) << i;
    EXPECT_EQ(a.id, b.id) << i;
    EXPECT_EQ(a.flow, b.flow) << i;
    EXPECT_DOUBLE_EQ(a.ts, b.ts) << i;
    EXPECT_DOUBLE_EQ(a.dur, b.dur) << i;
    EXPECT_DOUBLE_EQ(a.a0, b.a0) << i;
    EXPECT_DOUBLE_EQ(a.a1, b.a1) << i;
    EXPECT_DOUBLE_EQ(a.a2, b.a2) << i;
  }
}

TEST(TraceRecorderTest, FleetTraceExportsValidChromeJson) {
  const std::vector<TraceEvent> events = RunInstrumentedFleet(1);
  ASSERT_FALSE(events.empty());
  const std::string json = ExportChromeTrace(events);
  auto stats = ValidateChromeTrace(json);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->events, 0);
  // Router + controller + at least the two initial instances.
  EXPECT_GE(stats->tracks, 4);
  EXPECT_GE(stats->scale_events, 1);
  EXPECT_EQ(stats->flow_begins, stats->flow_ends);
  EXPECT_EQ(stats->matched_flows, stats->flow_begins);
  // Export is a pure function of the event sequence.
  EXPECT_EQ(json, ExportChromeTrace(events));
}

// ---- Chrome exporter edge cases -------------------------------------------

TEST(TraceRecorderTest, ChromeTraceRoundTripHandBuilt) {
  TraceRecorder rec;
  TraceSink router = rec.MakeSink(kRouterTrack);
  TraceSink a = rec.MakeSink(0);
  TraceSink b = rec.MakeSink(1);
  router.Instant(TraceOp::kRouteDecision, 0.0, 1, 0.0, 0.25, 3.0);
  a.Instant(TraceOp::kArrival, 0.1, 1);
  a.Span(TraceOp::kPrefill, 0.2, 0.3, 1, 12.0);
  const uint64_t flow = a.FlowBegin(TraceOp::kMigrationExport, 0.6, 1, 2.0);
  b.FlowEnd(TraceOp::kMigrationImport, 0.7, 1, flow, 1.0, 0.0);
  b.Span(TraceOp::kDecodeStep, 0.8, 0.0, 1, 1.0);

  const std::string json = ExportChromeTrace(rec.Flush());
  auto stats = ValidateChromeTrace(json);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->tracks, 3);
  EXPECT_EQ(stats->flow_begins, 1);
  EXPECT_EQ(stats->flow_ends, 1);
  EXPECT_EQ(stats->matched_flows, 1);
  EXPECT_EQ(stats->scale_events, 0);
}

TEST(TraceRecorderTest, ValidatorRejectsMalformedJson) {
  EXPECT_FALSE(ValidateChromeTrace("not json").ok());
  EXPECT_FALSE(ValidateChromeTrace("{\"traceEvents\": 3}").ok());
  EXPECT_FALSE(ValidateChromeTrace("{\"traceEvents\": [{}]}").ok());
}

TEST(TraceRecorderTest, ValidatorRejectsUnmatchedFlow) {
  TraceRecorder rec;
  TraceSink sink = rec.MakeSink(0);
  (void)sink.FlowBegin(TraceOp::kMigrationExport, 1.0, 1);
  const std::string json = ExportChromeTrace(rec.Flush());
  EXPECT_FALSE(ValidateChromeTrace(json).ok());
}

}  // namespace
}  // namespace aptserve::obs
