// Engine-level prefix-sharing tests: adoption of matched blocks with
// token streams bit-identical to unshared execution, copy-on-write of a
// partially matched tail block, refcount safety across release/preemption,
// seeding rollback under OOM, eviction racing a concurrent match, the
// hidden-cache exclusion, and the shared-prefix workload generator.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cache/hybrid_assigner.h"
#include "engine/inference_engine.h"
#include "prefix/prefix_index.h"
#include "workload/shared_prefix.h"
#include "workload/token_ids.h"

namespace aptserve {
namespace {

constexpr int32_t kBlock = 4;

ModelConfig Cfg() { return ModelConfig::Tiny(); }

std::vector<int32_t> Prompt(int32_t n, int32_t base = 3) {
  std::vector<int32_t> p(n);
  for (int32_t i = 0; i < n; ++i) p[i] = (base + i * 7) % Cfg().vocab_size;
  return p;
}

/// Reference tokens: the same generation on an engine without sharing.
std::vector<int32_t> ReferenceTokens(const std::vector<int32_t>& prompt,
                                     int32_t new_tokens) {
  InferenceEngine ref(Cfg(), 42, 64, kBlock);
  EXPECT_TRUE(ref.AddRequest(1, prompt, CacheType::kKV).ok());
  auto toks = ref.Generate(1, new_tokens);
  EXPECT_TRUE(toks.ok());
  return *toks;
}

TEST(PrefixSharingTest, SecondRequestAdoptsPrefixTokensUnchanged) {
  InferenceEngine engine(Cfg(), 42, 64, kBlock);
  engine.EnablePrefixSharing();
  const auto prompt = Prompt(10);  // 2 full blocks indexable, partial tail

  ASSERT_TRUE(engine.AddRequest(1, prompt, CacheType::kKV).ok());
  auto t1 = engine.Generate(1, 5);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(engine.prefix_index()->num_nodes(), 2);

  ASSERT_TRUE(engine.AddRequest(2, prompt, CacheType::kKV).ok());
  auto t2 = engine.Generate(2, 5);
  ASSERT_TRUE(t2.ok());

  const PrefixStats& s = engine.prefix_index()->stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.matched_tokens, 8);   // both full blocks, block-granular
  EXPECT_EQ(s.shared_blocks, 2);
  EXPECT_EQ(s.cow_matches, 0);
  EXPECT_GT(engine.pool().num_shared(), 0);

  // Sharing must be invisible in the tokens: adopted K/V are bit-identical
  // to recomputation, and both requests sample greedily from identical
  // logits.
  EXPECT_EQ(*t1, *t2);
  EXPECT_EQ(*t2, ReferenceTokens(prompt, 5));
}

TEST(PrefixSharingTest, CowOnBlockAlignedPromptTail) {
  InferenceEngine engine(Cfg(), 42, 64, kBlock);
  engine.EnablePrefixSharing();
  const auto prompt = Prompt(8);  // block-aligned: the match must COW

  ASSERT_TRUE(engine.AddRequest(1, prompt, CacheType::kKV).ok());
  ASSERT_TRUE(engine.Generate(1, 4).ok());

  // The whole prompt is indexed; the second request may only adopt 7 of 8
  // positions (one must be processed for logits), so the second block is
  // copy-on-written: 3 slots copied, position 7 recomputed into the copy.
  ASSERT_TRUE(engine.AddRequest(2, prompt, CacheType::kKV).ok());
  auto t2 = engine.Generate(2, 4);
  ASSERT_TRUE(t2.ok());

  const PrefixStats& s = engine.prefix_index()->stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.cow_matches, 1);
  EXPECT_EQ(s.matched_tokens, 7);
  EXPECT_EQ(s.shared_blocks, 1);
  EXPECT_EQ(*t2, ReferenceTokens(prompt, 4));
}

TEST(PrefixSharingTest, SharedBlocksSurviveOwnerRemovalAndPreemption) {
  InferenceEngine engine(Cfg(), 42, 64, kBlock);
  engine.EnablePrefixSharing();
  const auto prompt = Prompt(10);

  ASSERT_TRUE(engine.AddRequest(1, prompt, CacheType::kKV).ok());
  ASSERT_TRUE(engine.Generate(1, 3).ok());
  ASSERT_TRUE(engine.AddRequest(2, prompt, CacheType::kKV).ok());
  ASSERT_TRUE(engine.Prefill(2).ok());

  // The original owner leaves; the adopter and the index keep the blocks.
  ASSERT_TRUE(engine.RemoveRequest(1).ok());
  auto t2 = engine.Generate(2, 4);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(*t2, ReferenceTokens(prompt, 5));

  // Preempting the adopter drops its references but never the index's:
  // the prefix stays matchable and the resume re-adopts it.
  ASSERT_TRUE(engine.Preempt(2).ok());
  EXPECT_EQ(engine.prefix_index()->num_nodes(), 2);
  auto resumed = engine.Prefill(2);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(engine.prefix_index()->stats().hits, 2);  // seed + resume re-seed
  ASSERT_TRUE(engine.RemoveRequest(2).ok());
  // Only the index owns blocks now.
  EXPECT_EQ(engine.pool().num_allocated(),
            engine.prefix_index()->indexed_blocks());
}

TEST(PrefixSharingTest, HiddenCacheNeverShares) {
  InferenceEngine engine(Cfg(), 42, 64, kBlock);
  engine.EnablePrefixSharing();
  const auto prompt = Prompt(10);
  ASSERT_TRUE(engine.AddRequest(1, prompt, CacheType::kHidden).ok());
  ASSERT_TRUE(engine.Generate(1, 3).ok());
  ASSERT_TRUE(engine.AddRequest(2, prompt, CacheType::kHidden).ok());
  ASSERT_TRUE(engine.Generate(2, 3).ok());
  // Hidden-cache requests neither insert nor match.
  EXPECT_EQ(engine.prefix_index()->num_nodes(), 0);
  EXPECT_EQ(engine.prefix_index()->stats().hits, 0);
  EXPECT_EQ(engine.pool().num_shared(), 0);
}

TEST(PrefixSharingTest, SeedingRollsBackWhenChunkAllocationFails) {
  // Pool sized so request 2's seeding succeeds but the rest of its prefill
  // pass cannot allocate: the whole step must unwind to the pre-call state.
  // Request 1 (prompt 4, two generated tokens => 5 cached positions) holds
  // K:2+V:2 = 4 of 6 blocks and pins its indexed block pair, so nothing is
  // evictable. Request 2 (prompt 12) adopts 1 block pair and then needs 4
  // more blocks for positions 4..12 — only 2 are free.
  InferenceEngine engine(Cfg(), 42, 6, kBlock);
  engine.EnablePrefixSharing();
  const auto short_prompt = Prompt(4);
  auto long_prompt = Prompt(12);

  ASSERT_TRUE(engine.AddRequest(1, short_prompt, CacheType::kKV).ok());
  ASSERT_TRUE(engine.Generate(1, 2).ok());
  EXPECT_EQ(engine.prefix_index()->num_nodes(), 1);
  EXPECT_EQ(engine.pool().num_free(), 2);

  ASSERT_TRUE(engine.AddRequest(2, long_prompt, CacheType::kKV).ok());
  auto r = engine.Prefill(2);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfMemory());
  // Rollback: request 2 holds nothing, its state is fresh, and the pool is
  // exactly as before the attempt (the match left one hit in the stats).
  EXPECT_FALSE(engine.assigner().Has(2));
  EXPECT_EQ(engine.Find(2)->cached_tokens, 0);
  EXPECT_EQ(engine.pool().num_free(), 2);
  // The failed attempt counts as a lookup but never as an adoption, so
  // hit accounting stays equal to the positions genuinely skipped.
  EXPECT_GE(engine.prefix_index()->stats().lookups, 2);
  EXPECT_EQ(engine.prefix_index()->stats().hits, 0);
  EXPECT_EQ(engine.prefix_index()->stats().matched_tokens, 0);

  // Once request 1 leaves, the retry adopts the (still indexed) prefix and
  // completes.
  ASSERT_TRUE(engine.RemoveRequest(1).ok());
  auto t2 = engine.Generate(2, 1);
  ASSERT_TRUE(t2.ok()) << t2.status().ToString();
  EXPECT_EQ(*t2, ReferenceTokens(long_prompt, 1));
}

TEST(PrefixSharingTest, EvictionRacingMatchNeverFreesMatchedBlocks) {
  // Index holds prefix A (2 nodes, LRU-newer) and prefix B (1 node,
  // LRU-older after A's match touches it) with no live requests. A new
  // request matching A needs blocks the pool can only supply by evicting —
  // the eviction must take B, never A's matched (pinned) nodes.
  InferenceEngine engine(Cfg(), 42, 7, kBlock);
  engine.EnablePrefixSharing();
  const auto prompt_a = Prompt(8, 3);
  const auto prompt_b = Prompt(4, 11);

  ASSERT_TRUE(engine.AddRequest(1, prompt_a, CacheType::kKV).ok());
  const auto ref_a = engine.Generate(1, 2);
  ASSERT_TRUE(ref_a.ok());
  ASSERT_TRUE(engine.RemoveRequest(1).ok());
  ASSERT_TRUE(engine.AddRequest(2, prompt_b, CacheType::kKV).ok());
  ASSERT_TRUE(engine.Generate(2, 1).ok());
  ASSERT_TRUE(engine.RemoveRequest(2).ok());
  // Index: A = 2 block pairs, B = 1 pair; 6 of 7 blocks allocated.
  ASSERT_EQ(engine.prefix_index()->num_nodes(), 3);
  ASSERT_EQ(engine.pool().num_free(), 1);

  // Request 3 matches A (7 usable positions, COW tail) and needs a 2-block
  // private tail with only 1 block free: the reclaimer runs mid-seeding.
  ASSERT_TRUE(engine.AddRequest(3, prompt_a, CacheType::kKV).ok());
  auto t3 = engine.Generate(3, 2);
  ASSERT_TRUE(t3.ok()) << t3.status().ToString();
  EXPECT_EQ(*t3, *ref_a);  // adopted blocks were valid, not evicted

  const PrefixStats& s = engine.prefix_index()->stats();
  EXPECT_GE(s.evicted_blocks, 2);
  // B was the victim; A survived and still matches.
  EXPECT_FALSE(engine.prefix_index()->Match(prompt_b, 3).hit());
  EXPECT_TRUE(engine.prefix_index()->Match(prompt_a, 4).hit());
}

// ---- Assigner-level seeding ------------------------------------------------

TEST(PrefixSharingTest, CreateSeededTransfersOwnershipAndUnwinds) {
  BlockPool pool(8, kBlock);
  HybridCacheAssigner assigner(&pool);
  PrefixIndex index(&pool, kBlock);
  std::vector<BlockId> k, v;
  for (int i = 0; i < 2; ++i) {
    k.push_back(*pool.Allocate());
    v.push_back(*pool.Allocate());
  }
  std::vector<int32_t> tokens(8);
  std::iota(tokens.begin(), tokens.end(), 0);
  index.Insert(tokens, 8, k, v);
  pool.FreeMany({k[0], v[0], k[1], v[1]});  // index is the only owner

  // Full-block adoption: references transfer to the map and release with it.
  PrefixMatch m = index.Match(tokens, 8);
  auto seed = assigner.CreateSeeded(7, m);
  ASSERT_TRUE(seed.ok());
  EXPECT_EQ(seed->tokens, 0);
  EXPECT_EQ(pool.RefCount(k[0]), 2);
  ASSERT_TRUE(assigner.Release(7).ok());
  EXPECT_EQ(pool.RefCount(k[0]), 1);

  // COW adoption against a full pool: OOM leaves refcounts untouched.
  std::vector<BlockId> hog;
  ASSERT_TRUE(pool.AllocateMany(pool.num_free(), &hog).ok());
  m = index.Match(tokens, 7);
  ASSERT_EQ(m.cow_tokens, 3);
  auto oom = assigner.CreateSeeded(8, m);
  ASSERT_FALSE(oom.ok());
  EXPECT_TRUE(oom.status().IsOutOfMemory());
  EXPECT_FALSE(assigner.Has(8));
  EXPECT_EQ(pool.RefCount(k[0]), 1);
  EXPECT_EQ(pool.RefCount(k[1]), 1);
}

// ---- Shared-prefix workload generator --------------------------------------

TEST(PrefixSharingTest, SharedPrefixTraceShape) {
  SharedPrefixConfig cfg;
  cfg.system_prompt_len = 8;
  cfg.num_conversations = 3;
  cfg.turns_per_conversation = 2;
  cfg.tokens_per_turn = 4;
  cfg.output_len_mean = 4;
  cfg.vocab_size = 64;
  auto trace = BuildSharedPrefixTrace(cfg);
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace->size(), 6u);
  for (size_t i = 0; i < trace->size(); ++i) {
    const Request& r = (*trace)[i];
    EXPECT_EQ(r.id, static_cast<RequestId>(i));  // ids in arrival order
    EXPECT_EQ(static_cast<int32_t>(r.token_ids.size()), r.prompt_len);
    EXPECT_GE(r.output_len, 1);
    if (i > 0) EXPECT_GE(r.arrival, (*trace)[i - 1].arrival);
    // Every request starts with the same system prompt.
    EXPECT_TRUE(std::equal((*trace)[0].token_ids.begin(),
                           (*trace)[0].token_ids.begin() + 8,
                           r.token_ids.begin()));
  }
  // Turn 2 of a conversation extends turn 1's prompt.
  const Request* turn1 = nullptr;
  const Request* turn2 = nullptr;
  for (const Request& r : *trace) {
    if (r.prompt_len == 12 && turn1 == nullptr) turn1 = &r;
    if (r.prompt_len == 16 && turn2 == nullptr) turn2 = &r;
  }
  ASSERT_NE(turn1, nullptr);
  ASSERT_NE(turn2, nullptr);
  // Some turn-2 request extends some turn-1 request (the generator yields
  // conversations in stagger order, so the first of each matches).
  EXPECT_TRUE(std::equal(turn1->token_ids.begin(), turn1->token_ids.end(),
                         turn2->token_ids.begin()));

  // Reproducibility and the deterministic length-only synthesizer.
  auto again = BuildSharedPrefixTrace(cfg);
  ASSERT_TRUE(again.ok());
  for (size_t i = 0; i < trace->size(); ++i) {
    EXPECT_EQ((*trace)[i].token_ids, (*again)[i].token_ids);
  }
  EXPECT_EQ(DeterministicPromptTokens(5, 9, 16, 64),
            DeterministicPromptTokens(5, 9, 16, 64));
  EXPECT_NE(DeterministicPromptTokens(5, 9, 16, 64),
            DeterministicPromptTokens(6, 9, 16, 64));
}

}  // namespace
}  // namespace aptserve
