#include "workload/trace.h"

#include <gtest/gtest.h>

namespace aptserve {
namespace {

TraceConfig BaseConfig() {
  TraceConfig cfg;
  cfg.profile = DatasetProfile::ShareGpt();
  cfg.num_requests = 500;
  cfg.rate_per_sec = 2.0;
  cfg.seed = 9;
  return cfg;
}

TEST(TraceTest, BuildsRequestedCount) {
  auto trace = BuildTrace(BaseConfig());
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->size(), 500u);
  for (size_t i = 0; i < trace->size(); ++i) {
    EXPECT_EQ((*trace)[i].id, static_cast<RequestId>(i));
    EXPECT_GE((*trace)[i].prompt_len, 1);
    EXPECT_GE((*trace)[i].output_len, 1);
  }
}

TEST(TraceTest, ArrivalsSorted) {
  auto trace = BuildTrace(BaseConfig());
  ASSERT_TRUE(trace.ok());
  for (size_t i = 1; i < trace->size(); ++i) {
    EXPECT_GE((*trace)[i].arrival, (*trace)[i - 1].arrival);
  }
}

TEST(TraceTest, RespectsContextCap) {
  TraceConfig cfg = BaseConfig();
  cfg.profile = DatasetProfile::LongBench();
  cfg.max_total_len = 2048;
  auto trace = BuildTrace(cfg);
  ASSERT_TRUE(trace.ok());
  for (const Request& r : *trace) {
    EXPECT_LE(r.total_len(), 2048);
  }
}

TEST(TraceTest, DeterministicForSeed) {
  auto t1 = BuildTrace(BaseConfig());
  auto t2 = BuildTrace(BaseConfig());
  ASSERT_TRUE(t1.ok() && t2.ok());
  for (size_t i = 0; i < t1->size(); ++i) {
    EXPECT_EQ((*t1)[i].prompt_len, (*t2)[i].prompt_len);
    EXPECT_EQ((*t1)[i].output_len, (*t2)[i].output_len);
    EXPECT_DOUBLE_EQ((*t1)[i].arrival, (*t2)[i].arrival);
  }
}

TEST(TraceTest, DifferentSeedsDiffer) {
  TraceConfig a = BaseConfig(), b = BaseConfig();
  b.seed = 10;
  auto ta = BuildTrace(a), tb = BuildTrace(b);
  ASSERT_TRUE(ta.ok() && tb.ok());
  int diff = 0;
  for (size_t i = 0; i < ta->size(); ++i) {
    if ((*ta)[i].prompt_len != (*tb)[i].prompt_len) ++diff;
  }
  EXPECT_GT(diff, 100);
}

TEST(TraceTest, StatsSummary) {
  auto trace = BuildTrace(BaseConfig());
  ASSERT_TRUE(trace.ok());
  TraceStats s = ComputeTraceStats(*trace);
  EXPECT_GT(s.input_mean, 0);
  EXPECT_GT(s.output_mean, 0);
  EXPECT_GE(s.input_max, s.input_median);
  EXPECT_GE(s.output_max, s.output_median);
}

TEST(TraceTest, InputValidation) {
  TraceConfig cfg = BaseConfig();
  cfg.num_requests = -1;
  EXPECT_FALSE(BuildTrace(cfg).ok());
  cfg = BaseConfig();
  cfg.max_total_len = 1;
  EXPECT_FALSE(BuildTrace(cfg).ok());
  cfg = BaseConfig();
  cfg.rate_per_sec = 0.0;
  EXPECT_FALSE(BuildTrace(cfg).ok());
}

TEST(TraceTest, HigherRateCompressesArrivals) {
  TraceConfig slow = BaseConfig(), fast = BaseConfig();
  fast.rate_per_sec = 20.0;
  auto ts = BuildTrace(slow), tf = BuildTrace(fast);
  ASSERT_TRUE(ts.ok() && tf.ok());
  EXPECT_GT(ts->back().arrival, 4 * tf->back().arrival);
}

}  // namespace
}  // namespace aptserve
