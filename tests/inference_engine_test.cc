#include "engine/inference_engine.h"

#include <gtest/gtest.h>

namespace aptserve {
namespace {

ModelConfig Cfg() { return ModelConfig::Tiny(); }

std::vector<int32_t> Prompt(int32_t n, int32_t base = 3) {
  std::vector<int32_t> p(n);
  for (int32_t i = 0; i < n; ++i) p[i] = (base + i * 7) % Cfg().vocab_size;
  return p;
}

TEST(InferenceEngineTest, PrefillThenDecode) {
  InferenceEngine engine(Cfg(), 42, 64, 4);
  ASSERT_TRUE(engine.AddRequest(1, Prompt(8), CacheType::kKV).ok());
  auto first = engine.Prefill(1);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const GenerationState* gs = engine.Find(1);
  ASSERT_NE(gs, nullptr);
  EXPECT_EQ(gs->cached_tokens, 8);
  EXPECT_EQ(gs->tokens.size(), 9u);
  EXPECT_EQ(gs->generated(), 1);
  auto next = engine.DecodeStep(1);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(gs->cached_tokens, 9);
  EXPECT_EQ(gs->generated(), 2);
}

TEST(InferenceEngineTest, KvAndHiddenGenerateIdenticalTokens) {
  InferenceEngine e1(Cfg(), 42, 64, 4);
  InferenceEngine e2(Cfg(), 42, 64, 4);
  ASSERT_TRUE(e1.AddRequest(1, Prompt(10), CacheType::kKV).ok());
  ASSERT_TRUE(e2.AddRequest(1, Prompt(10), CacheType::kHidden).ok());
  auto t1 = e1.Generate(1, 15);
  auto t2 = e2.Generate(1, 15);
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_EQ(*t1, *t2);
}

TEST(InferenceEngineTest, ConversionPreservesGeneration) {
  // Reference: generate 12 tokens with KV throughout.
  InferenceEngine ref(Cfg(), 7, 128, 4);
  ASSERT_TRUE(ref.AddRequest(1, Prompt(6), CacheType::kKV).ok());
  auto expected = ref.Generate(1, 12);
  ASSERT_TRUE(expected.ok());

  // Same run, but convert KV -> hidden after 4 tokens and hidden -> KV
  // after 8 (each conversion discards the cache and re-prefills).
  InferenceEngine eng(Cfg(), 7, 128, 4);
  ASSERT_TRUE(eng.AddRequest(1, Prompt(6), CacheType::kKV).ok());
  ASSERT_TRUE(eng.Generate(1, 4).ok());
  ASSERT_TRUE(eng.ConvertCacheType(1, CacheType::kHidden).ok());
  EXPECT_EQ(eng.Find(1)->cached_tokens, 0);  // cache discarded
  ASSERT_TRUE(eng.Generate(1, 4).ok());      // resume-prefill + decodes
  ASSERT_TRUE(eng.ConvertCacheType(1, CacheType::kKV).ok());
  ASSERT_TRUE(eng.Generate(1, 4).ok());
  EXPECT_EQ(eng.Find(1)->tokens, *expected);
}

TEST(InferenceEngineTest, ConversionToSameTypeIsNoOp) {
  InferenceEngine eng(Cfg(), 7, 64, 4);
  ASSERT_TRUE(eng.AddRequest(1, Prompt(6), CacheType::kKV).ok());
  ASSERT_TRUE(eng.Prefill(1).ok());
  const int32_t cached = eng.Find(1)->cached_tokens;
  ASSERT_TRUE(eng.ConvertCacheType(1, CacheType::kKV).ok());
  EXPECT_EQ(eng.Find(1)->cached_tokens, cached);
}

TEST(InferenceEngineTest, HiddenCacheHalvesBlockUsage) {
  InferenceEngine kv(Cfg(), 42, 64, 4);
  InferenceEngine hid(Cfg(), 42, 64, 4);
  ASSERT_TRUE(kv.AddRequest(1, Prompt(16), CacheType::kKV).ok());
  ASSERT_TRUE(hid.AddRequest(1, Prompt(16), CacheType::kHidden).ok());
  ASSERT_TRUE(kv.Prefill(1).ok());
  ASSERT_TRUE(hid.Prefill(1).ok());
  EXPECT_EQ(kv.pool().num_allocated(), 8);   // 2 * ceil(16/4)
  EXPECT_EQ(hid.pool().num_allocated(), 4);  // ceil(16/4)
}

TEST(InferenceEngineTest, PreemptionAndResumeIsDeterministic) {
  InferenceEngine ref(Cfg(), 9, 128, 4);
  ASSERT_TRUE(ref.AddRequest(1, Prompt(5), CacheType::kKV).ok());
  auto expected = ref.Generate(1, 10);
  ASSERT_TRUE(expected.ok());

  InferenceEngine eng(Cfg(), 9, 128, 4);
  ASSERT_TRUE(eng.AddRequest(1, Prompt(5), CacheType::kKV).ok());
  ASSERT_TRUE(eng.Generate(1, 5).ok());
  ASSERT_TRUE(eng.Preempt(1).ok());
  EXPECT_EQ(eng.pool().num_allocated(), 0);
  ASSERT_TRUE(eng.Generate(1, 5).ok());
  EXPECT_EQ(eng.Find(1)->tokens, *expected);
}

TEST(InferenceEngineTest, GenerateStopsAtEos) {
  InferenceEngine eng(Cfg(), 42, 64, 4);
  ASSERT_TRUE(eng.AddRequest(1, Prompt(4), CacheType::kKV).ok());
  // Find what the model generates, then re-run with that token as EOS.
  auto all = eng.Generate(1, 6);
  ASSERT_TRUE(all.ok());
  const int32_t eos = (*all)[4];  // first generated token
  InferenceEngine eng2(Cfg(), 42, 64, 4);
  ASSERT_TRUE(eng2.AddRequest(1, Prompt(4), CacheType::kKV).ok());
  auto out = eng2.Generate(1, 6, eos);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 5u);  // prompt + the EOS token
}

TEST(InferenceEngineTest, ApiErrors) {
  InferenceEngine eng(Cfg(), 42, 64, 4);
  EXPECT_TRUE(eng.Prefill(1).status().IsNotFound());
  EXPECT_TRUE(eng.DecodeStep(1).status().IsNotFound());
  EXPECT_TRUE(eng.RemoveRequest(1).IsNotFound());
  EXPECT_TRUE(eng.AddRequest(1, {}, CacheType::kKV).IsInvalidArgument());
  EXPECT_TRUE(
      eng.AddRequest(1, {Cfg().vocab_size + 1}, CacheType::kKV)
          .IsInvalidArgument());
  ASSERT_TRUE(eng.AddRequest(1, Prompt(4), CacheType::kKV).ok());
  EXPECT_TRUE(eng.AddRequest(1, Prompt(4), CacheType::kKV).IsAlreadyExists());
  EXPECT_TRUE(eng.DecodeStep(1).status().IsFailedPrecondition());
  ASSERT_TRUE(eng.Prefill(1).ok());
  EXPECT_TRUE(eng.Prefill(1).status().IsFailedPrecondition());
}

TEST(InferenceEngineTest, OutOfMemoryPrefillRollsBack) {
  InferenceEngine eng(Cfg(), 42, /*num_blocks=*/4, /*block_size=*/4);
  // 16-token KV prefill needs 8 blocks > 4 available.
  ASSERT_TRUE(eng.AddRequest(1, Prompt(16), CacheType::kKV).ok());
  auto r = eng.Prefill(1);
  EXPECT_TRUE(r.status().IsOutOfMemory());
  EXPECT_EQ(eng.pool().num_allocated(), 0);
  // Hidden fits (4 blocks).
  ASSERT_TRUE(eng.ConvertCacheType(1, CacheType::kHidden).ok());
  EXPECT_TRUE(eng.Prefill(1).ok());
}

TEST(InferenceEngineTest, RemoveFreesBlocks) {
  InferenceEngine eng(Cfg(), 42, 64, 4);
  ASSERT_TRUE(eng.AddRequest(1, Prompt(8), CacheType::kKV).ok());
  ASSERT_TRUE(eng.Prefill(1).ok());
  EXPECT_GT(eng.pool().num_allocated(), 0);
  ASSERT_TRUE(eng.RemoveRequest(1).ok());
  EXPECT_EQ(eng.pool().num_allocated(), 0);
  EXPECT_EQ(eng.Find(1), nullptr);
}

TEST(InferenceEngineTest, ManyConcurrentRequestsShareThePool) {
  InferenceEngine eng(Cfg(), 42, 128, 4);
  for (RequestId id = 0; id < 6; ++id) {
    const CacheType t = id % 2 ? CacheType::kHidden : CacheType::kKV;
    ASSERT_TRUE(eng.AddRequest(id, Prompt(6, 2 + id), t).ok());
    ASSERT_TRUE(eng.Prefill(id).ok());
  }
  // Interleave decode steps round-robin (iteration-level batching).
  for (int step = 0; step < 8; ++step) {
    for (RequestId id = 0; id < 6; ++id) {
      ASSERT_TRUE(eng.DecodeStep(id).ok());
    }
  }
  for (RequestId id = 0; id < 6; ++id) {
    EXPECT_EQ(eng.Find(id)->generated(), 9);
    ASSERT_TRUE(eng.RemoveRequest(id).ok());
  }
  EXPECT_EQ(eng.pool().num_allocated(), 0);
}

}  // namespace
}  // namespace aptserve
