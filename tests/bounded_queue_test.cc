// BoundedQueue: the async serving fabric's MPSC channel. Single-threaded
// semantics (FIFO, capacity, close-then-drain) plus multi-threaded churn
// and shutdown races — the suite runs under TSan in CI, so any lock or
// wakeup mistake in the queue surfaces here, not in the serving stack.
#include "runtime/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace aptserve::runtime {
namespace {

TEST(BoundedQueueTest, FifoOrderAndHighWater) {
  BoundedQueue<int> q(8);
  EXPECT_EQ(q.capacity(), 8u);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  EXPECT_EQ(q.size(), 5u);
  EXPECT_EQ(q.high_water(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto v = q.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.high_water(), 5u);  // sticky
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full
  q.DrainNow();
  EXPECT_TRUE(q.TryPush(4));  // space again
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_FALSE(q.TryPush(2));
}

TEST(BoundedQueueTest, CloseDrainsQueuedItemsThenSignalsEmpty) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(q.Push(i));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.Push(99));  // producers fail fast
  // Consumers still see everything queued before the close.
  for (int i = 0; i < 3; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.Pop().has_value());  // closed and drained: no block
  q.Close();                          // idempotent
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> push_returned{false};
  std::thread producer([&] {
    // Blocks: queue is at capacity and nobody pops.
    const bool ok = q.Push(2);
    EXPECT_FALSE(ok);  // woken by Close, item dropped
    push_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(push_returned.load());
  q.Close();
  producer.join();
  EXPECT_TRUE(push_returned.load());
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(4);
  std::atomic<bool> got_null{false};
  std::thread consumer([&] {
    auto v = q.Pop();  // blocks: empty
    got_null.store(!v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  consumer.join();
  EXPECT_TRUE(got_null.load());
}

TEST(BoundedQueueTest, PopForTimesOutOnEmpty) {
  BoundedQueue<int> q(4);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.PopFor(std::chrono::milliseconds(10)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(5));
  q.Push(7);
  EXPECT_EQ(*q.PopFor(std::chrono::milliseconds(10)), 7);
}

TEST(BoundedQueueTest, DrainNowTakesWholeBurst) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 9; ++i) q.Push(i);
  const std::vector<int> burst = q.DrainNow();
  ASSERT_EQ(burst.size(), 9u);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(burst[i], i);
  EXPECT_TRUE(q.DrainNow().empty());
}

TEST(BoundedQueueTest, MultiProducerChurnConservesItems) {
  // 4 producers x 500 items through a deliberately tiny queue (constant
  // backpressure), one consumer. Every item must arrive exactly once.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int64_t> q(8);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(static_cast<int64_t>(p) * kPerProducer + i));
      }
    });
  }
  int64_t got = 0;
  int64_t sum = 0;
  std::thread consumer([&] {
    while (got < kProducers * kPerProducer) {
      auto v = q.Pop();
      ASSERT_TRUE(v.has_value());
      sum += *v;
      ++got;
    }
  });
  for (auto& t : producers) t.join();
  consumer.join();
  const int64_t total = static_cast<int64_t>(kProducers) * kPerProducer;
  EXPECT_EQ(got, total);
  EXPECT_EQ(sum, total * (total - 1) / 2);
  EXPECT_LE(q.high_water(), q.capacity());
}

TEST(BoundedQueueTest, ShutdownRaceDropsNothingAlreadyQueued) {
  // Producers race a close; whatever Push() accepted must be popped, and
  // accepted + dropped must cover every attempt.
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 400;
  BoundedQueue<int> q(4);
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (q.Push(i)) accepted.fetch_add(1, std::memory_order_acq_rel);
      }
    });
  }
  std::atomic<int> popped{0};
  std::thread consumer([&] {
    while (true) {
      auto v = q.Pop();
      if (!v.has_value()) return;  // closed and drained
      popped.fetch_add(1, std::memory_order_acq_rel);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.Close();
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(popped.load(), accepted.load());
  EXPECT_LE(accepted.load(), kProducers * kPerProducer);
}

}  // namespace
}  // namespace aptserve::runtime
