#include "sim/model_spec.h"

#include <gtest/gtest.h>

#include "sim/cluster_spec.h"

namespace aptserve {
namespace {

TEST(ModelSpecTest, Opt13BCacheFootprint) {
  const ModelSpec m = ModelSpec::Opt13B();
  // hidden/token = L * d * 2B = 40 * 5120 * 2 = 409,600 bytes.
  EXPECT_DOUBLE_EQ(m.HiddenBytesPerToken(), 409600.0);
  // KV is exactly double (the paper's 2:1 hybrid accounting).
  EXPECT_DOUBLE_EQ(m.KvBytesPerToken(), 819200.0);
  EXPECT_DOUBLE_EQ(m.WeightBytes(), 26e9);
}

TEST(ModelSpecTest, KvAlwaysTwiceHidden) {
  for (const auto& m :
       {ModelSpec::Opt13B(), ModelSpec::Opt30B(), ModelSpec::Opt66B(),
        ModelSpec::Llama3_8B_262K(), ModelSpec::Yi6B_200K()}) {
    EXPECT_DOUBLE_EQ(m.KvBytesPerToken(), 2.0 * m.HiddenBytesPerToken())
        << m.name;
    EXPECT_GT(m.FlopsPerToken(), 0) << m.name;
    EXPECT_GT(m.HiddenRecomputeFlopsPerToken(), 0) << m.name;
  }
}

TEST(ModelSpecTest, ByNameRoundTrip) {
  for (const char* name :
       {"OPT-13B", "OPT-30B", "OPT-66B", "LLaMA3-8B-Instruct262K",
        "Yi-6B-200K"}) {
    auto m = ModelSpec::ByName(name);
    ASSERT_TRUE(m.ok()) << name;
    EXPECT_EQ(m->name, name);
  }
  EXPECT_TRUE(ModelSpec::ByName("GPT-5").status().IsNotFound());
}

TEST(ModelSpecTest, RecomputeFlopsMatchTwoProjections) {
  const ModelSpec m = ModelSpec::Opt13B();
  // K and V projections: 2 matvecs of d x d, 2 FLOPs per MAC, per layer.
  EXPECT_DOUBLE_EQ(m.HiddenRecomputeFlopsPerToken(),
                   4.0 * 5120 * 5120 * 40);
}

TEST(ClusterSpecTest, Table2Pairings) {
  EXPECT_EQ(ClusterSpec::ForModel(ModelSpec::Opt13B()).n_gpus, 1);
  EXPECT_EQ(ClusterSpec::ForModel(ModelSpec::Opt30B()).n_gpus, 2);
  EXPECT_EQ(ClusterSpec::ForModel(ModelSpec::Opt66B()).n_gpus, 4);
  EXPECT_EQ(ClusterSpec::ForModel(ModelSpec::Llama3_8B_262K()).n_gpus, 1);
}

TEST(ClusterSpecTest, CacheBytesSubtractsWeights) {
  const ModelSpec m = ModelSpec::Opt13B();
  ClusterSpec c = ClusterSpec::ForModel(m);
  auto bytes = c.CacheBytes(m);
  ASSERT_TRUE(bytes.ok());
  EXPECT_NEAR(*bytes, 40e9 * 0.9 - 26e9, 1e6);
}

TEST(ClusterSpecTest, ModelTooBigRejected) {
  ClusterSpec c;
  c.n_gpus = 1;  // 66B (132GB) cannot fit on one 40GB GPU
  EXPECT_FALSE(c.CacheBytes(ModelSpec::Opt66B()).ok());
}

TEST(ClusterSpecTest, TensorParallelScaling) {
  ClusterSpec one, four;
  one.n_gpus = 1;
  four.n_gpus = 4;
  EXPECT_DOUBLE_EQ(one.TpScale(), 1.0);
  EXPECT_GT(four.TpScale(), 3.0);  // sub-linear but substantial
  EXPECT_LT(four.TpScale(), 4.0);
  EXPECT_GT(four.EffectiveFlops(), 3.0 * one.EffectiveFlops());
}

}  // namespace
}  // namespace aptserve
