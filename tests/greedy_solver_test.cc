// Unit and property tests for the greedy solution of the hybrid-cache-based
// scheduling problem (paper Definition 1, §5): feasibility, the marginal-
// gain schedule structure, and the empirical 2-approximation bound against
// the exact DP oracle over randomized instances.
#include "core/greedy_solver.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace aptserve {
namespace {

QuantificationModel MakeModel(double rho = 1e-5, int32_t n_sys = 50,
                              double decay = 0.0) {
  QuantificationConfig qc;
  qc.rho_seconds_per_token = rho;
  qc.num_requests_in_system = n_sys;
  qc.violation_decay = decay;
  return QuantificationModel(qc);
}

CandidateInfo Cand(RequestId id, double pending, int32_t blocks,
                   int32_t tokens, bool violated = false) {
  CandidateInfo c;
  c.id = id;
  c.pending_s = pending;
  c.m_blocks = blocks;
  c.m_tokens = tokens;
  c.slo_violated = violated;
  return c;
}

double SolutionWeight(const std::vector<CandidateInfo>& cands,
                      const GreedySolution& sol) {
  double w = 0;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (!sol.decisions[i].selected) continue;
    w += sol.decisions[i].use_hidden ? std::max(1, cands[i].m_blocks / 2)
                                     : cands[i].m_blocks;
  }
  return w;
}

double SolutionValue(const QuantificationModel& m,
                     const std::vector<CandidateInfo>& cands,
                     const GreedySolution& sol) {
  double v = 0;
  for (size_t i = 0; i < cands.size(); ++i) {
    if (!sol.decisions[i].selected) continue;
    v += m.Value(cands[i], sol.decisions[i].use_hidden);
  }
  return v;
}

TEST(GreedySolverTest, EmptyInput) {
  auto m = MakeModel();
  GreedySolver solver(&m);
  auto sol = solver.Solve({}, 100);
  EXPECT_EQ(sol.total_value, 0.0);
  EXPECT_TRUE(sol.decisions.empty());
}

TEST(GreedySolverTest, ZeroCapacitySelectsNothing) {
  auto m = MakeModel();
  GreedySolver solver(&m);
  auto sol = solver.Solve({Cand(1, 1.0, 4, 50)}, 0);
  EXPECT_FALSE(sol.decisions[0].selected);
}

TEST(GreedySolverTest, EverythingFitsSelectsAllAsKv) {
  // With ample capacity the greedy takes both marginal steps for every
  // candidate: everyone scheduled with full KV cache (no hidden penalty).
  auto m = MakeModel(/*rho=*/1e-5, /*n_sys=*/10);
  GreedySolver solver(&m);
  std::vector<CandidateInfo> cands = {
      Cand(1, 5.0, 10, 80), Cand(2, 3.0, 20, 160), Cand(3, 8.0, 6, 48)};
  auto sol = solver.Solve(cands, 1000);
  for (const auto& d : sol.decisions) {
    EXPECT_TRUE(d.selected);
    EXPECT_FALSE(d.use_hidden);
  }
  EXPECT_DOUBLE_EQ(sol.total_value, 16.0);
}

TEST(GreedySolverTest, TightCapacityAssignsHidden) {
  // Two requests of 10 blocks each, capacity 10: hidden fits both at half
  // memory; with large pendings that beats one full KV schedule.
  auto m = MakeModel(/*rho=*/1e-6, /*n_sys=*/10);
  GreedySolver solver(&m);
  std::vector<CandidateInfo> cands = {Cand(1, 10.0, 10, 80),
                                      Cand(2, 9.0, 10, 80)};
  auto sol = solver.Solve(cands, 10);
  EXPECT_TRUE(sol.decisions[0].selected);
  EXPECT_TRUE(sol.decisions[1].selected);
  EXPECT_TRUE(sol.decisions[0].use_hidden);
  EXPECT_TRUE(sol.decisions[1].use_hidden);
}

TEST(GreedySolverTest, UnprofitableHiddenUsesDirectKvStep) {
  // Huge penalty: hidden never profitable, degenerates to 0-1 knapsack.
  auto m = MakeModel(/*rho=*/1.0, /*n_sys=*/100);
  GreedySolver solver(&m);
  std::vector<CandidateInfo> cands = {Cand(1, 2.0, 6, 50),
                                      Cand(2, 1.0, 6, 50)};
  auto sol = solver.Solve(cands, 6);
  EXPECT_TRUE(sol.decisions[0].selected);
  EXPECT_FALSE(sol.decisions[0].use_hidden);
  EXPECT_FALSE(sol.decisions[1].selected);
}

TEST(GreedySolverTest, RespectsCapacity) {
  auto m = MakeModel();
  GreedySolver solver(&m);
  Rng rng(5);
  std::vector<CandidateInfo> cands;
  for (int i = 0; i < 40; ++i) {
    cands.push_back(Cand(i, rng.Uniform(0.1, 10.0),
                         2 * static_cast<int32_t>(rng.UniformInt(1, 30)),
                         static_cast<int32_t>(rng.UniformInt(10, 500))));
  }
  for (int32_t cap : {10, 50, 100, 400}) {
    auto sol = solver.Solve(cands, cap);
    EXPECT_LE(SolutionWeight(cands, sol), cap);
    EXPECT_NEAR(SolutionValue(m, cands, sol), sol.total_value, 1e-9);
  }
}

TEST(GreedySolverTest, ViolatedRequestsDemoted) {
  auto m = MakeModel();
  GreedySolver solver(&m);
  // The violated request has huge pending but near-zero effective value, so
  // the healthy one wins the single slot.
  std::vector<CandidateInfo> cands = {
      Cand(1, 100.0, 6, 50, /*violated=*/true), Cand(2, 0.5, 6, 50)};
  auto sol = solver.Solve(cands, 6);
  EXPECT_FALSE(sol.decisions[0].selected);
  EXPECT_TRUE(sol.decisions[1].selected);
}

TEST(GreedySolverTest, BestSingleGuardBeatsFragmentedGreedy) {
  // Classic knapsack adversary: many small low-value items fill capacity
  // before one big high-value item is considered; the guard must return the
  // big item alone.
  auto m = MakeModel(/*rho=*/1.0, /*n_sys=*/1000);  // hidden unprofitable
  GreedySolver solver(&m);
  std::vector<CandidateInfo> cands;
  // Small items: density 1.0/2 = 0.5 each.
  for (int i = 0; i < 5; ++i) cands.push_back(Cand(i, 1.0, 2, 1));
  // Big item: value 100, weight 10, density 10 — but if greedy had taken
  // the small ones first it could not fit. (Density order actually places
  // it first; craft the adversary instead with capacity 10 and a big item
  // of density slightly below the small ones.)
  cands.push_back(Cand(99, 4.9, 10, 1));  // density 0.49
  auto sol = solver.Solve(cands, 10);
  // Greedy by density takes the 5 small items (value 5, weight 10); the
  // single big item (value 4.9) loses. Exact = 5. Either way we must be
  // within factor 2 of exact and feasible.
  auto exact = SolveExact(m, cands, 10);
  EXPECT_LE(SolutionWeight(cands, sol), 10);
  EXPECT_GE(2 * sol.total_value + 1e-9, exact.total_value);
}

TEST(ExactSolverTest, MatchesBruteForceIntuition) {
  auto m = MakeModel(/*rho=*/1e-6, /*n_sys=*/10);
  // Capacity 10; KV(A)=v 10/w 10; hidden(A)=~10/5; KV(B)=6/6, hidden(B)~6/3.
  // Best: hidden A + hidden B = ~16 within weight 8.
  std::vector<CandidateInfo> cands = {Cand(1, 10.0, 10, 10),
                                      Cand(2, 6.0, 6, 10)};
  auto sol = SolveExact(m, cands, 10);
  EXPECT_TRUE(sol.decisions[0].selected);
  EXPECT_TRUE(sol.decisions[1].selected);
  EXPECT_TRUE(sol.decisions[0].use_hidden);
  EXPECT_TRUE(sol.decisions[1].use_hidden);
  EXPECT_NEAR(sol.total_value, 16.0, 0.01);
}

// ---- Property sweep: greedy is a 2-approximation of the exact optimum ----

class ApproxRatioTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ApproxRatioTest, GreedyWithinFactorTwoOfExact) {
  Rng rng(GetParam());
  for (int inst = 0; inst < 30; ++inst) {
    const int n = 1 + static_cast<int>(rng.UniformInt(0, 14));
    const double rho = rng.Uniform(1e-7, 1e-4);
    const int n_sys = 1 + static_cast<int>(rng.UniformInt(0, 200));
    auto m = MakeModel(rho, n_sys);
    GreedySolver solver(&m);
    std::vector<CandidateInfo> cands;
    for (int i = 0; i < n; ++i) {
      cands.push_back(Cand(i, rng.Uniform(0.001, 20.0),
                           2 * static_cast<int32_t>(rng.UniformInt(1, 20)),
                           static_cast<int32_t>(rng.UniformInt(1, 2000)),
                           rng.Uniform() < 0.2));
    }
    const int32_t cap = static_cast<int32_t>(rng.UniformInt(1, 300));
    auto greedy = solver.Solve(cands, cap);
    auto exact = SolveExact(m, cands, cap);
    EXPECT_LE(SolutionWeight(cands, greedy), cap);
    EXPECT_LE(SolutionWeight(cands, exact), cap);
    EXPECT_LE(greedy.total_value, exact.total_value + 1e-9)
        << "greedy cannot beat the optimum";
    EXPECT_GE(2.0 * greedy.total_value + 1e-9, exact.total_value)
        << "2-approximation violated: greedy=" << greedy.total_value
        << " exact=" << exact.total_value << " cap=" << cap;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxRatioTest,
                         ::testing::Range<uint64_t>(1, 21));

// In practice greedy is usually near-optimal; check the average gap too.
TEST(ApproxRatioTest, AverageGapIsSmall) {
  Rng rng(777);
  double ratio_sum = 0;
  int count = 0;
  for (int inst = 0; inst < 100; ++inst) {
    auto m = MakeModel(rng.Uniform(1e-7, 1e-4),
                       1 + static_cast<int>(rng.UniformInt(0, 100)));
    GreedySolver solver(&m);
    std::vector<CandidateInfo> cands;
    for (int i = 0; i < 12; ++i) {
      cands.push_back(Cand(i, rng.Uniform(0.01, 10.0),
                           2 * static_cast<int32_t>(rng.UniformInt(1, 15)),
                           static_cast<int32_t>(rng.UniformInt(1, 1000))));
    }
    const int32_t cap = static_cast<int32_t>(rng.UniformInt(10, 200));
    auto greedy = solver.Solve(cands, cap);
    auto exact = SolveExact(m, cands, cap);
    if (exact.total_value > 0) {
      ratio_sum += greedy.total_value / exact.total_value;
      ++count;
    }
  }
  EXPECT_GT(ratio_sum / count, 0.9);
}

}  // namespace
}  // namespace aptserve
