#include "sim/report_writer.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "baselines/fcfs_scheduler.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace aptserve {
namespace {

TEST(ReportWriterTest, RequestRecordsCsvShape) {
  std::unordered_map<RequestId, RequestRecord> records;
  RequestRecord a;
  a.spec = Request{2, 10, 5, 1.0};
  a.ttft = 0.5;
  a.tbt_samples = {0.1, 0.2};
  a.finish_time = 2.0;
  RequestRecord b;
  b.spec = Request{1, 20, 3, 0.5};
  b.ttft = 2.0;  // violates a 1s TTFT SLO
  b.finish_time = 3.0;
  records[2] = a;
  records[1] = b;

  std::ostringstream out;
  WriteRequestRecordsCsv(records, SloSpec{1.0, 1.0}, &out);
  const std::string csv = out.str();
  // Header plus two rows, sorted by id.
  EXPECT_NE(csv.find("id,arrival"), std::string::npos);
  const size_t row1 = csv.find("\n1,");
  const size_t row2 = csv.find("\n2,");
  ASSERT_NE(row1, std::string::npos);
  ASSERT_NE(row2, std::string::npos);
  EXPECT_LT(row1, row2);
  // SLO flags present: request 1 misses TTFT (",0,"), request 2 meets.
  EXPECT_NE(csv.find(",0,1\n"), std::string::npos);
  EXPECT_NE(csv.find(",1,1\n"), std::string::npos);
}

TEST(ReportWriterTest, SweepCsv) {
  std::ostringstream out;
  WriteSweepCsv({{"vLLM", 2.0, 0.9, 0.92, 1.0, 3.5, 4},
                 {"Apt", 2.0, 0.99, 0.99, 1.0, 4.25, 0}},
                &out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("system,rate,slo_attainment,ttft_attainment,"
                     "tbt_attainment,goodput_rps,rejected\n"),
            std::string::npos);
  EXPECT_NE(csv.find("vLLM,2,0.9,0.92,1,3.5,4\n"), std::string::npos);
  EXPECT_NE(csv.find("Apt,2,0.99,0.99,1,4.25,0\n"), std::string::npos);
}

TEST(ReportWriterTest, RequestRecordsCsvCarriesDeadlinesAndBestEffort) {
  std::unordered_map<RequestId, RequestRecord> records;
  RequestRecord own_slo;
  own_slo.spec = Request{7, 10, 5, 1.0};
  own_slo.spec.slo_ttft_s = 0.25;   // own deadline, tighter than run SLO
  own_slo.ttft = 0.5;               // misses its own bound, meets the run's
  own_slo.finish_time = 2.0;
  RequestRecord best_effort;
  best_effort.spec = Request{8, 10, 5, 1.5};
  best_effort.spec.best_effort = true;
  best_effort.ttft = 0.1;
  best_effort.finish_time = 2.5;
  records[7] = own_slo;
  records[8] = best_effort;

  std::ostringstream out;
  WriteRequestRecordsCsv(records, SloSpec{1.0, 1.0}, &out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("ttft_bound,tbt_bound,best_effort,meets_ttft"),
            std::string::npos);
  // Request 7: bound 0.25 (own), best_effort 0, meets_ttft 0.
  EXPECT_NE(csv.find(",0.25,1,0,0,1\n"), std::string::npos);
  // Request 8: inherited bound 1, best_effort 1, meets_ttft 1.
  EXPECT_NE(csv.find(",1,1,1,1,1\n"), std::string::npos);
}

TEST(ReportWriterTest, FleetCsvShape) {
  SloReport a, b;
  a.slo_attainment = 1.0;
  a.goodput_rps = 2.5;
  a.mean_ttft = 0.125;
  a.preemptions = 3;
  b.slo_attainment = 0.5;
  b.goodput_rps = 1.25;
  b.mean_ttft = 0.5;
  std::ostringstream out;
  WriteFleetCsv({a, b}, {40, 60}, &out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("instance,requests,slo_attainment,goodput_rps,"
                     "mean_ttft,preemptions\n"),
            std::string::npos);
  EXPECT_NE(csv.find("0,40,1,2.5,0.125,3\n"), std::string::npos);
  EXPECT_NE(csv.find("1,60,0.5,1.25,0.5,0\n"), std::string::npos);
}

TEST(ReportWriterTest, CdfCsvMonotone) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.Add(i);
  std::ostringstream out;
  WriteCdfCsv(s, &out, 10);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "value,cum_fraction");
  double prev_v = -1, prev_f = -1;
  while (std::getline(in, line)) {
    const size_t comma = line.find(',');
    const double v = std::stod(line.substr(0, comma));
    const double f = std::stod(line.substr(comma + 1));
    EXPECT_GE(v, prev_v);
    EXPECT_GE(f, prev_f);
    prev_v = v;
    prev_f = f;
  }
  EXPECT_DOUBLE_EQ(prev_f, 1.0);
}

TEST(ReportWriterTest, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/apt_report_test.csv";
  Status st = WriteFile(path, [](std::ostream* out) { *out << "x,y\n1,2\n"; });
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::ifstream f(path);
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "x,y\n1,2\n");
}

TEST(ReportWriterTest, WriteFileBadPath) {
  Status st = WriteFile("/nonexistent_dir_xyz/file.csv",
                        [](std::ostream*) {});
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(ReportWriterTest, WallLatencyCsvShape) {
  // The async bench writes one row per serving mode; pin the header
  // columns and the row count.
  WallClockMetrics m;
  m.OnArrival(1, 0.0);
  m.OnToken(1, 0.2);  // TTFT 0.2
  m.OnToken(1, 0.3);  // TBT 0.1
  m.OnFinish(1, 0.3);
  m.OnArrival(2, 0.1);
  m.OnToken(2, 0.5);
  m.OnFinish(2, 0.5);
  const WallLatencyReport report = m.Report();
  ASSERT_EQ(report.requests, 2);
  ASSERT_EQ(report.tokens, 3);

  std::ostringstream out;
  WriteWallLatencyCsv({{"async", report}, {"virtual", report}}, &out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("mode,requests,tokens,duration_s"), std::string::npos);
  EXPECT_NE(csv.find("ttft_p50"), std::string::npos);
  EXPECT_NE(csv.find("e2e_p99"), std::string::npos);
  EXPECT_NE(csv.find("\nasync,2,3,"), std::string::npos);
  EXPECT_NE(csv.find("\nvirtual,2,3,"), std::string::npos);
  int lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3);  // header + 2 rows
}

TEST(ReportWriterTest, SimulatorRecordsExportEndToEnd) {
  TraceConfig tc;
  tc.profile = DatasetProfile::HumanEval();
  tc.num_requests = 50;
  tc.rate_per_sec = 3.0;
  tc.seed = 15;
  auto trace = BuildTrace(tc);
  ASSERT_TRUE(trace.ok());
  const SloSpec slo{1.0, 1.0};
  FcfsScheduler sched;
  const ModelSpec model = ModelSpec::Opt13B();
  CostModel cm(model, ClusterSpec::ForModel(model));
  Simulator sim(cm, SimulatorConfig{});
  auto result = sim.Run(*trace, &sched, slo);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records.size(), 50u);
  std::ostringstream out;
  WriteRequestRecordsCsv(result->records, slo, &out);
  // 1 header + 50 rows.
  int lines = 0;
  for (char c : out.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 51);
}

}  // namespace
}  // namespace aptserve
