// Int8-quantized cache blocks: round-trip error bounds of the quantizer,
// dense packing through BlockStorage and the hybrid assigner, block
// conservation through export->import migration with raw-code transport,
// swap stability (requantization idempotence end to end), and the
// bit-identity guarantee when quantization is off.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "cache/block_pool.h"
#include "cache/cache_map.h"
#include "cache/cache_types.h"
#include "cache/hybrid_assigner.h"
#include "cache/migration_image.h"
#include "cache/quantization.h"
#include "common/rng.h"
#include "engine/block_storage.h"
#include "engine/inference_engine.h"

namespace aptserve {
namespace {

ModelConfig Cfg() { return ModelConfig::Tiny(); }

std::vector<int32_t> Prompt(int32_t n, int32_t base = 3) {
  std::vector<int32_t> p(n);
  for (int32_t i = 0; i < n; ++i) p[i] = (base + i * 7) % Cfg().vocab_size;
  return p;
}

CacheEncodingPolicy AllInt8(bool quantize_transit = false) {
  CacheEncodingPolicy policy;
  policy.kv = BlockEncoding::kInt8;
  policy.hidden = BlockEncoding::kInt8;
  policy.quantize_migration_payload = quantize_transit;
  return policy;
}

std::vector<float> RandomVec(Rng* rng, int32_t n, double scale = 1.0) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = static_cast<float>(rng->Normal(0.0, scale));
  return v;
}

TEST(QuantizationTest, RoundTripWithinHalfScale) {
  Rng rng(5);
  for (int32_t n : {1, 7, 32, 255}) {
    const std::vector<float> x = RandomVec(&rng, n, 10.0);
    const QuantParams p = ComputeQuantParams(x.data(), n);
    std::vector<uint8_t> codes(n);
    std::vector<float> back(n);
    QuantizeVector(x.data(), n, p, codes.data());
    DequantizeVector(codes.data(), n, p, back.data());
    for (int32_t i = 0; i < n; ++i) {
      // Documented bound: at most scale/2 per value (plus fp slack).
      ASSERT_LE(std::abs(x[i] - back[i]), 0.5f * p.scale + 1e-4f * p.scale)
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(QuantizationTest, ConstantVectorExact) {
  std::vector<float> x(16, 3.25f);
  const QuantParams p = ComputeQuantParams(x.data(), 16);
  EXPECT_EQ(p.scale, 0.0f);
  EXPECT_EQ(p.zero, 3.25f);
  std::vector<uint8_t> codes(16);
  std::vector<float> back(16);
  QuantizeVector(x.data(), 16, p, codes.data());
  DequantizeVector(codes.data(), 16, p, back.data());
  for (float v : back) ASSERT_EQ(v, 3.25f);
}

TEST(QuantizationTest, RequantizationIdempotent) {
  // quant(dequant(q)) == q: what makes fp32 staging round-trips (swap
  // out/in, lossy transit) stable after the first quantization.
  Rng rng(6);
  for (int32_t n : {8, 33, 128}) {
    const std::vector<float> x = RandomVec(&rng, n, 4.0);
    const QuantParams p1 = ComputeQuantParams(x.data(), n);
    std::vector<uint8_t> q1(n);
    std::vector<float> back(n);
    QuantizeVector(x.data(), n, p1, q1.data());
    DequantizeVector(q1.data(), n, p1, back.data());

    const QuantParams p2 = ComputeQuantParams(back.data(), n);
    std::vector<uint8_t> q2(n);
    QuantizeVector(back.data(), n, p2, q2.data());
    std::vector<float> back2(n);
    DequantizeVector(q2.data(), n, p2, back2.data());
    ASSERT_EQ(back2, back) << "n=" << n;
  }
}

TEST(QuantizedStorageTest, WriteReadBoundedNoSlotAliasing) {
  // 3 physical blocks of 4 fp32 slots; an int8 map packs 16 token slots
  // into each. Fill every (layer, pos) with a distinct vector, then verify
  // all of them — a packing/offset bug shows up as cross-slot corruption.
  const int32_t blocks = 3, bs = 4, layers = 2, dim = 16;
  BlockStorage storage(blocks, bs, layers, dim);
  CacheMap map(CacheType::kHidden, bs * kInt8SlotPack, BlockEncoding::kInt8);
  map.AppendBlocks(CacheComponent::kHidden, {0, 2});
  const int32_t tokens = 2 * bs * kInt8SlotPack;  // both blocks full
  map.AdvanceTokens(tokens);

  Rng rng(7);
  std::vector<std::vector<float>> written;
  for (int32_t layer = 0; layer < layers; ++layer) {
    for (int32_t pos = 0; pos < tokens; ++pos) {
      written.push_back(RandomVec(&rng, dim, 2.0));
      storage.WriteVector(map, CacheComponent::kHidden, layer, pos,
                          written.back().data());
    }
  }
  size_t idx = 0;
  std::vector<float> out(dim);
  for (int32_t layer = 0; layer < layers; ++layer) {
    for (int32_t pos = 0; pos < tokens; ++pos, ++idx) {
      storage.ReadVector(map, CacheComponent::kHidden, layer, pos, out.data());
      const std::vector<float>& want = written[idx];
      const QuantParams p = ComputeQuantParams(want.data(), dim);
      for (int32_t i = 0; i < dim; ++i) {
        ASSERT_LE(std::abs(want[i] - out[i]), 0.5f * p.scale + 1e-4f * p.scale)
            << "layer=" << layer << " pos=" << pos << " i=" << i;
      }
    }
  }

  // Gather must agree with per-position reads exactly (same dequantize).
  std::vector<float> gathered(static_cast<size_t>(tokens) * dim);
  storage.Gather(map, CacheComponent::kHidden, 1, tokens, gathered.data());
  for (int32_t pos = 0; pos < tokens; ++pos) {
    storage.ReadVector(map, CacheComponent::kHidden, 1, pos, out.data());
    for (int32_t i = 0; i < dim; ++i) {
      ASSERT_EQ(gathered[static_cast<size_t>(pos) * dim + i], out[i]);
    }
  }
}

TEST(QuantizedStorageTest, RawTransportExact) {
  // ReadQuantized -> WriteQuantized must hand codes over bit-exactly:
  // dequantized reads on the destination equal the source's.
  const int32_t bs = 4, layers = 1, dim = 8;
  BlockStorage src(2, bs, layers, dim), dst(2, bs, layers, dim);
  CacheMap src_map(CacheType::kHidden, bs * kInt8SlotPack,
                   BlockEncoding::kInt8);
  CacheMap dst_map(CacheType::kHidden, bs * kInt8SlotPack,
                   BlockEncoding::kInt8);
  src_map.AppendBlocks(CacheComponent::kHidden, {1});
  dst_map.AppendBlocks(CacheComponent::kHidden, {0});
  src_map.AdvanceTokens(bs * kInt8SlotPack);
  dst_map.AdvanceTokens(bs * kInt8SlotPack);

  Rng rng(8);
  std::vector<uint8_t> codes(dim);
  std::vector<float> a(dim), b(dim);
  for (int32_t pos = 0; pos < bs * kInt8SlotPack; ++pos) {
    const std::vector<float> v = RandomVec(&rng, dim, 3.0);
    src.WriteVector(src_map, CacheComponent::kHidden, 0, pos, v.data());
    QuantParams p;
    src.ReadQuantized(src_map, CacheComponent::kHidden, 0, pos, codes.data(),
                      &p);
    dst.WriteQuantized(dst_map, CacheComponent::kHidden, 0, pos, codes.data(),
                       p);
    src.ReadVector(src_map, CacheComponent::kHidden, 0, pos, a.data());
    dst.ReadVector(dst_map, CacheComponent::kHidden, 0, pos, b.data());
    ASSERT_EQ(a, b) << "pos=" << pos;
  }
}

TEST(QuantizedAssignerTest, Int8TiersPackFourTimesTheTokens) {
  BlockPool pool(64, 16);
  HybridCacheAssigner assigner(&pool);

  // Default fp32 policy.
  EXPECT_EQ(assigner.SlotsPerBlockFor(CacheType::kKV), 16);
  EXPECT_EQ(assigner.BlocksNeeded(CacheType::kKV, 100), 2 * 7);
  EXPECT_EQ(assigner.BlocksNeeded(CacheType::kHidden, 100), 7);

  assigner.SetEncodingPolicy(AllInt8());
  EXPECT_EQ(assigner.SlotsPerBlockFor(CacheType::kKV), 64);
  EXPECT_EQ(assigner.BlocksNeeded(CacheType::kKV, 100), 2 * 2);
  EXPECT_EQ(assigner.BlocksNeeded(CacheType::kHidden, 100), 2);

  // CreateFilled allocates at the packed density and the map carries the
  // per-map slots-per-block so capacity math matches.
  ASSERT_TRUE(assigner.CreateFilled(1, CacheType::kHidden, 100).ok());
  const CacheMap* map = assigner.Find(1);
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->encoding(), BlockEncoding::kInt8);
  EXPECT_EQ(map->block_size(), 64);
  EXPECT_EQ(map->TotalBlocks(), 2);
  EXPECT_EQ(map->capacity(), 128);
  EXPECT_EQ(pool.num_allocated(), 2);

  // Growth within the packed capacity allocates nothing; crossing it
  // allocates one more block per component.
  EXPECT_EQ(assigner.BlocksToGrow(1, 128), 0);
  ASSERT_TRUE(assigner.Append(1, 28).ok());
  EXPECT_EQ(pool.num_allocated(), 2);
  EXPECT_EQ(assigner.BlocksToGrow(1, 129), 1);
  ASSERT_TRUE(assigner.Append(1, 1).ok());
  EXPECT_EQ(pool.num_allocated(), 3);

  ASSERT_TRUE(assigner.Release(1).ok());
  EXPECT_EQ(pool.num_allocated(), 0);
}

TEST(QuantizedEngineTest, TokensBitIdenticalWithQuantizationOff) {
  // The explicit all-fp32 policy must be indistinguishable from never
  // configuring a policy at all — the "quantization off" acceptance bar.
  InferenceEngine plain(Cfg(), 42, 64, 4);
  InferenceEngine configured(Cfg(), 42, 64, 4);
  configured.SetEncodingPolicy(CacheEncodingPolicy{});
  for (InferenceEngine* e : {&plain, &configured}) {
    ASSERT_TRUE(e->AddRequest(1, Prompt(10), CacheType::kKV).ok());
    ASSERT_TRUE(e->AddRequest(2, Prompt(6, 11), CacheType::kHidden).ok());
  }
  auto a1 = plain.Generate(1, 12);
  auto b1 = configured.Generate(1, 12);
  auto a2 = plain.Generate(2, 12);
  auto b2 = configured.Generate(2, 12);
  ASSERT_TRUE(a1.ok() && b1.ok() && a2.ok() && b2.ok());
  EXPECT_EQ(*a1, *b1);
  EXPECT_EQ(*a2, *b2);
}

TEST(QuantizedEngineTest, Int8FitsWhereFp32Cannot) {
  // Equal pool bytes: 4 blocks of 4 slots holds at most 8 KV tokens fp32,
  // but 32 quantized — the capacity win the bench quantifies.
  InferenceEngine fp32(Cfg(), 42, 4, 4);
  ASSERT_TRUE(fp32.AddRequest(1, Prompt(20), CacheType::kKV).ok());
  auto r = fp32.Prefill(1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfMemory());

  InferenceEngine quantized(Cfg(), 42, 4, 4);
  quantized.SetEncodingPolicy(AllInt8());
  ASSERT_TRUE(quantized.AddRequest(1, Prompt(20), CacheType::kKV).ok());
  auto ok = quantized.Generate(1, 8);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(static_cast<int32_t>(ok->size()), 28);
}

TEST(QuantizedEngineTest, SwapRoundTripStableUnderInt8) {
  // Swap stages through an fp32 host buffer; requantization idempotence
  // must make the post-swap-in decode identical to never having swapped.
  for (CacheType type : {CacheType::kKV, CacheType::kHidden}) {
    InferenceEngine control(Cfg(), 9, 64, 4);
    control.SetEncodingPolicy(AllInt8());
    ASSERT_TRUE(control.AddRequest(1, Prompt(8), type).ok());
    auto expected = control.Generate(1, 10);
    ASSERT_TRUE(expected.ok());

    InferenceEngine swapped(Cfg(), 9, 64, 4);
    swapped.SetEncodingPolicy(AllInt8());
    ASSERT_TRUE(swapped.AddRequest(1, Prompt(8), type).ok());
    ASSERT_TRUE(swapped.Generate(1, 4).ok());
    ASSERT_TRUE(swapped.SwapOut(1).ok());
    EXPECT_TRUE(swapped.IsSwappedOut(1));
    ASSERT_TRUE(swapped.SwapIn(1).ok());
    ASSERT_TRUE(swapped.Generate(1, 6).ok());
    EXPECT_EQ(swapped.Find(1)->tokens, *expected)
        << "type=" << CacheTypeName(type);
  }
}

TEST(QuantizedMigrationTest, RawTransportConservesBlocksAndPayload) {
  InferenceEngine src(Cfg(), 21, 32, 4);
  InferenceEngine dst(Cfg(), 21, 32, 4);
  src.SetEncodingPolicy(AllInt8());
  dst.SetEncodingPolicy(AllInt8());

  ASSERT_TRUE(src.AddRequest(1, Prompt(12), CacheType::kKV).ok());
  ASSERT_TRUE(src.Generate(1, 4).ok());
  const GenerationState* gs = src.Find(1);
  ASSERT_NE(gs, nullptr);
  const int32_t cached = gs->cached_tokens;
  const CacheMap* src_map = src.assigner().Find(1);
  ASSERT_NE(src_map, nullptr);
  const int32_t src_blocks = src_map->TotalBlocks();
  EXPECT_EQ(src.pool().num_allocated(), src_blocks);

  // Record the dequantized payload the destination must reproduce.
  const int32_t d = Cfg().d_model, layers = Cfg().n_layers;
  std::vector<std::vector<float>> rows;
  std::vector<float> row(static_cast<size_t>(d));
  for (CacheComponent comp : src_map->Components()) {
    for (int32_t layer = 0; layer < layers; ++layer) {
      for (int32_t pos = 0; pos < cached; ++pos) {
        src.storage().ReadVector(*src_map, comp, layer, pos, row.data());
        rows.push_back(row);
      }
    }
  }

  auto image = src.ExportRequest(1);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(image->payload_encoding, BlockEncoding::kInt8);
  EXPECT_TRUE(image->payload.empty());
  EXPECT_EQ(image->qpayload.size(),
            static_cast<size_t>(2) * layers * cached * d);
  EXPECT_EQ(image->qscale.size(), static_cast<size_t>(2) * layers * cached);
  // Conservation at the source: every block returned to the free list.
  EXPECT_EQ(src.pool().num_allocated(), 0);
  EXPECT_EQ(src.pool().total_exported_blocks(), src_blocks);
  EXPECT_EQ(src.Find(1), nullptr);

  auto import = dst.ImportRequest(1, *image);
  ASSERT_TRUE(import.ok()) << import.status().ToString();
  EXPECT_TRUE(import->cache_restored);
  EXPECT_EQ(import->copied_tokens, cached);
  // Int8 transport bytes: dim codes + scale/zero per vector.
  EXPECT_DOUBLE_EQ(import->bytes,
                   static_cast<double>(cached) * 2 * layers * (d + 8.0));

  // Conservation at the destination: the packed block count, every block
  // privately owned (refcount 1), lifetime import counter advanced.
  const CacheMap* dst_map = dst.assigner().Find(1);
  ASSERT_NE(dst_map, nullptr);
  EXPECT_EQ(dst_map->encoding(), BlockEncoding::kInt8);
  EXPECT_EQ(dst_map->num_tokens(), cached);
  EXPECT_EQ(dst_map->TotalBlocks(), src_blocks);
  EXPECT_EQ(dst.pool().num_allocated(), src_blocks);
  EXPECT_EQ(dst.pool().total_imported_blocks(), src_blocks);
  for (BlockId b : dst_map->AllBlocks()) {
    EXPECT_EQ(dst.pool().RefCount(b), 1) << "block " << b;
  }

  // Raw-code transport is exact: dequantized reads match the source's.
  size_t idx = 0;
  for (CacheComponent comp : dst_map->Components()) {
    for (int32_t layer = 0; layer < layers; ++layer) {
      for (int32_t pos = 0; pos < cached; ++pos, ++idx) {
        dst.storage().ReadVector(*dst_map, comp, layer, pos, row.data());
        ASSERT_EQ(row, rows[idx]) << "layer=" << layer << " pos=" << pos;
      }
    }
  }

  // The migrated request decodes exactly like an unmigrated control.
  InferenceEngine control(Cfg(), 21, 32, 4);
  control.SetEncodingPolicy(AllInt8());
  ASSERT_TRUE(control.AddRequest(1, Prompt(12), CacheType::kKV).ok());
  auto expected = control.Generate(1, 10);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(dst.Generate(1, 6).ok());
  EXPECT_EQ(dst.Find(1)->tokens, *expected);

  // Full conservation: releasing the request drains the destination pool.
  ASSERT_TRUE(dst.RemoveRequest(1).ok());
  EXPECT_EQ(dst.pool().num_allocated(), 0);
}

TEST(QuantizedMigrationTest, QuantizeInTransitShrinksFp32Payload) {
  // Fp32 tiers with quantize_migration_payload: the payload crosses the
  // interconnect as int8 (lossy, ~4x fewer bytes) and lands back in fp32
  // blocks at the destination.
  CacheEncodingPolicy transit;
  transit.quantize_migration_payload = true;
  InferenceEngine src(Cfg(), 33, 32, 4);
  InferenceEngine dst(Cfg(), 33, 32, 4);
  src.SetEncodingPolicy(transit);

  ASSERT_TRUE(src.AddRequest(1, Prompt(10), CacheType::kKV).ok());
  ASSERT_TRUE(src.Generate(1, 3).ok());
  const int32_t cached = src.Find(1)->cached_tokens;

  auto image = src.ExportRequest(1);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->payload_encoding, BlockEncoding::kInt8);

  const int32_t d = Cfg().d_model, layers = Cfg().n_layers;
  auto import = dst.ImportRequest(1, *image);
  ASSERT_TRUE(import.ok()) << import.status().ToString();
  ASSERT_TRUE(import->cache_restored);
  const double fp32_bytes =
      static_cast<double>(cached) * 2 * layers * d * sizeof(float);
  EXPECT_DOUBLE_EQ(import->bytes,
                   static_cast<double>(cached) * 2 * layers * (d + 8.0));
  EXPECT_LT(import->bytes, 0.35 * fp32_bytes);

  // The destination map is fp32 and the request keeps decoding (the
  // transit quantization is lossy, so no token-stream claim).
  EXPECT_EQ(dst.assigner().Find(1)->encoding(), BlockEncoding::kFp32);
  auto cont = dst.Generate(1, 5);
  ASSERT_TRUE(cont.ok()) << cont.status().ToString();
  EXPECT_EQ(static_cast<int32_t>(cont->size()), 10 + 3 + 5);
}

TEST(QuantizedEngineTest, PrefixSharingGatesOffForInt8Kv) {
  // Two identical prompts on an int8-KV engine with sharing enabled: no
  // seeded map may be created (shared blocks must be exact across
  // adopters), and both requests still generate the same stream.
  InferenceEngine engine(Cfg(), 55, 64, 4);
  engine.SetEncodingPolicy(AllInt8());
  engine.EnablePrefixSharing();
  ASSERT_TRUE(engine.AddRequest(1, Prompt(12), CacheType::kKV).ok());
  ASSERT_TRUE(engine.AddRequest(2, Prompt(12), CacheType::kKV).ok());
  auto t1 = engine.Generate(1, 6);
  auto t2 = engine.Generate(2, 6);
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_EQ(*t1, *t2);
  EXPECT_EQ(engine.assigner().num_seeded(), 0);
  EXPECT_EQ(engine.pool().num_shared(), 0);
}

}  // namespace
}  // namespace aptserve
