#include "workload/length_sampler.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace aptserve {
namespace {

SampleSet Draw(const LengthDistribution& d, int n, uint64_t seed = 1) {
  Rng rng(seed);
  SampleSet s;
  for (int i = 0; i < n; ++i) s.Add(d.Sample(&rng));
  return s;
}

TEST(LengthDistributionTest, LogNormalMatchesMedianAndMean) {
  auto d = LengthDistribution::LogNormalByMedianMean(200, 300, 1, 100000);
  auto s = Draw(d, 50000);
  EXPECT_NEAR(s.Median(), 200, 12);
  EXPECT_NEAR(s.Mean(), 300, 20);
}

TEST(LengthDistributionTest, RespectsBounds) {
  auto d = LengthDistribution::LogNormalByMedianMean(200, 400, 50, 500);
  auto s = Draw(d, 20000);
  EXPECT_GE(s.Min(), 50);
  EXPECT_LE(s.Max(), 500);
}

TEST(LengthDistributionTest, NormalMatchesMoments) {
  auto d = LengthDistribution::NormalByMeanStd(100, 10, 1, 1000);
  auto s = Draw(d, 20000);
  EXPECT_NEAR(s.Mean(), 100, 2);
  EXPECT_NEAR(s.Median(), 100, 2);
}

TEST(LengthDistributionTest, ReflectedIsLeftSkewed) {
  // mean < median requires a left-skewed shape.
  auto d = LengthDistribution::ReflectedByMedianMean(221, 185, 305, 8, 299);
  auto s = Draw(d, 50000);
  EXPECT_LT(s.Mean(), s.Median());
  EXPECT_NEAR(s.Median(), 221, 12);
  EXPECT_NEAR(s.Mean(), 185, 15);
  EXPECT_LE(s.Max(), 299);
}

TEST(LengthDistributionTest, DegenerateMedianEqualsMean) {
  // mean <= median falls back to a small sigma rather than NaN.
  auto d = LengthDistribution::LogNormalByMedianMean(100, 100, 1, 1000);
  auto s = Draw(d, 5000);
  EXPECT_NEAR(s.Median(), 100, 10);
}

struct ProfileCase {
  const char* name;
  bool ultra_long;
};

class DatasetProfileTest : public ::testing::TestWithParam<ProfileCase> {};

TEST_P(DatasetProfileTest, ByNameRoundTrip) {
  auto p = DatasetProfile::ByName(GetParam().name);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->name, GetParam().name);
}

TEST_P(DatasetProfileTest, SamplesArePositiveAndBounded) {
  auto p = DatasetProfile::ByName(GetParam().name);
  ASSERT_TRUE(p.ok());
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(p->input.Sample(&rng), 1);
    EXPECT_GE(p->output.Sample(&rng), 1);
    EXPECT_LE(p->input.Sample(&rng), p->input.max_len);
    EXPECT_LE(p->output.Sample(&rng), p->output.max_len);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, DatasetProfileTest,
    ::testing::Values(ProfileCase{"ShareGPT", false},
                      ProfileCase{"HumanEval", false},
                      ProfileCase{"LongBench", false},
                      ProfileCase{"WikiText", true},
                      ProfileCase{"Arxiv", true},
                      ProfileCase{"BookCorpus", true}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(DatasetProfileTest, UnknownNameRejected) {
  EXPECT_TRUE(DatasetProfile::ByName("Wikipedia").status().IsNotFound());
}

// Figure 7's qualitative ordering: LongBench has much longer inputs than
// ShareGPT; HumanEval has the shortest outputs; ShareGPT the longest.
TEST(DatasetProfileTest, Figure7QualitativeOrdering) {
  Rng rng(5);
  auto mean = [&](const LengthDistribution& d) {
    SampleSet s;
    for (int i = 0; i < 20000; ++i) s.Add(d.Sample(&rng));
    return s.Mean();
  };
  const double sg_in = mean(DatasetProfile::ShareGpt().input);
  const double lb_in = mean(DatasetProfile::LongBench().input);
  const double he_out = mean(DatasetProfile::HumanEval().output);
  const double sg_out = mean(DatasetProfile::ShareGpt().output);
  const double lb_out = mean(DatasetProfile::LongBench().output);
  EXPECT_GT(lb_in, 4 * sg_in);
  EXPECT_LT(he_out, lb_out);
  EXPECT_LT(lb_out, sg_out);
}

// Table 7's reported statistics for the ultra-long datasets.
TEST(DatasetProfileTest, Table7WikiTextStats) {
  Rng rng(11);
  SampleSet in, out;
  auto p = DatasetProfile::WikiText();
  for (int i = 0; i < 50000; ++i) {
    in.Add(p.input.Sample(&rng));
    out.Add(p.output.Sample(&rng));
  }
  EXPECT_NEAR(in.Median(), 871, 60);
  EXPECT_NEAR(in.Mean(), 914, 60);
  EXPECT_LE(in.Max(), 1840);
  EXPECT_NEAR(out.Median(), 552, 40);
  EXPECT_NEAR(out.Mean(), 521, 40);
}

TEST(DatasetProfileTest, Table7ArxivStats) {
  Rng rng(11);
  SampleSet in, out;
  auto p = DatasetProfile::Arxiv();
  for (int i = 0; i < 50000; ++i) {
    in.Add(p.input.Sample(&rng));
    out.Add(p.output.Sample(&rng));
  }
  EXPECT_NEAR(in.Median(), 6853, 400);
  EXPECT_LE(in.Max(), 19600);
  EXPECT_NEAR(out.Median(), 226, 30);
  EXPECT_GT(out.Mean(), out.Median());  // heavy right tail
}

TEST(DatasetProfileTest, Table7BookCorpusStats) {
  Rng rng(11);
  SampleSet in, out;
  auto p = DatasetProfile::BookCorpus();
  for (int i = 0; i < 50000; ++i) {
    in.Add(p.input.Sample(&rng));
    out.Add(p.output.Sample(&rng));
  }
  EXPECT_NEAR(in.Median(), 14781, 900);
  EXPECT_LE(in.Max(), 23706);
  EXPECT_LT(out.Mean(), out.Median());  // left-skewed outputs
  EXPECT_LE(out.Max(), 299);
}

}  // namespace
}  // namespace aptserve
