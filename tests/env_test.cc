// Strict env parsing (common/env.h) and its RuntimeConfig wiring: an
// unparseable APTSERVE_NUM_THREADS must fall back to serial with a warning
// instead of being silently absorbed by a partial strtol parse.
#include "common/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "runtime/runtime_config.h"

namespace aptserve {
namespace {

TEST(ParseInt64Test, WholeTokenOnly) {
  EXPECT_EQ(env::ParseInt64("4"), 4);
  EXPECT_EQ(env::ParseInt64("-1"), -1);
  EXPECT_EQ(env::ParseInt64("  8  "), 8);
  EXPECT_EQ(env::ParseInt64("0"), 0);
  EXPECT_FALSE(env::ParseInt64(nullptr).has_value());
  EXPECT_FALSE(env::ParseInt64("").has_value());
  EXPECT_FALSE(env::ParseInt64("   ").has_value());
  EXPECT_FALSE(env::ParseInt64("four").has_value());
  EXPECT_FALSE(env::ParseInt64("4x").has_value());       // partial parse
  EXPECT_FALSE(env::ParseInt64("4 2").has_value());      // embedded token
  EXPECT_FALSE(env::ParseInt64("99999999999999999999").has_value());  // range
}

TEST(ParseUint64ListTest, ValidAndMalformedTokens) {
  bool bad = true;
  EXPECT_EQ(env::ParseUint64List("1,2,3", &bad),
            (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_FALSE(bad);
  EXPECT_EQ(env::ParseUint64List(" 7 , 8 ", &bad),
            (std::vector<uint64_t>{7, 8}));
  EXPECT_FALSE(bad);
  // Empty tokens skip without complaint (trailing comma is harmless).
  EXPECT_EQ(env::ParseUint64List("1,,2,", &bad),
            (std::vector<uint64_t>{1, 2}));
  EXPECT_FALSE(bad);
  // Malformed tokens are dropped AND reported.
  EXPECT_EQ(env::ParseUint64List("1,two,3", &bad),
            (std::vector<uint64_t>{1, 3}));
  EXPECT_TRUE(bad);
  EXPECT_EQ(env::ParseUint64List("4x", &bad), std::vector<uint64_t>{});
  EXPECT_TRUE(bad);
  EXPECT_EQ(env::ParseUint64List("-3", &bad), std::vector<uint64_t>{});
  EXPECT_TRUE(bad);
  EXPECT_EQ(env::ParseUint64List(nullptr, &bad), std::vector<uint64_t>{});
  EXPECT_FALSE(bad);
}

class NumThreadsEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* old = std::getenv("APTSERVE_NUM_THREADS");
    if (old != nullptr) saved_ = old;
  }
  void TearDown() override {
    if (saved_.empty()) {
      unsetenv("APTSERVE_NUM_THREADS");
    } else {
      setenv("APTSERVE_NUM_THREADS", saved_.c_str(), 1);
    }
  }
  std::string saved_;
};

TEST_F(NumThreadsEnvTest, ValidValueResolves) {
  setenv("APTSERVE_NUM_THREADS", "3", 1);
  EXPECT_EQ(RuntimeConfig{}.ResolvedNumThreads(), 3);
}

TEST_F(NumThreadsEnvTest, UnparseableFallsBackToSerial) {
  // Regression: strtol(env, nullptr, 10) treated "four" as 0 (→ unset)
  // and would have absorbed "4x" as 4. Both must now resolve serial.
  setenv("APTSERVE_NUM_THREADS", "four", 1);
  EXPECT_EQ(RuntimeConfig{}.ResolvedNumThreads(), 1);
  setenv("APTSERVE_NUM_THREADS", "4x", 1);
  EXPECT_EQ(RuntimeConfig{}.ResolvedNumThreads(), 1);
}

TEST_F(NumThreadsEnvTest, ExplicitConfigBeatsEnvironment) {
  setenv("APTSERVE_NUM_THREADS", "four", 1);
  RuntimeConfig config;
  config.num_threads = 2;
  EXPECT_EQ(config.ResolvedNumThreads(), 2);
}

TEST_F(NumThreadsEnvTest, NegativeMeansHardwareConcurrency) {
  setenv("APTSERVE_NUM_THREADS", "-1", 1);
  EXPECT_GE(RuntimeConfig{}.ResolvedNumThreads(), 1);
}

class FuzzSeedsEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* old = std::getenv("APTSERVE_FUZZ_SEEDS");
    if (old != nullptr) {
      saved_ = old;
      had_ = true;
    }
  }
  void TearDown() override {
    if (had_) {
      setenv("APTSERVE_FUZZ_SEEDS", saved_.c_str(), 1);
    } else {
      unsetenv("APTSERVE_FUZZ_SEEDS");
    }
  }
  std::string saved_;
  bool had_ = false;
};

TEST_F(FuzzSeedsEnvTest, UnsetUsesFallback) {
  unsetenv("APTSERVE_FUZZ_SEEDS");
  EXPECT_EQ(env::FuzzSeedsFromEnv({1, 2}), (std::vector<uint64_t>{1, 2}));
}

TEST_F(FuzzSeedsEnvTest, ValidListOverrides) {
  setenv("APTSERVE_FUZZ_SEEDS", "101,202", 1);
  EXPECT_EQ(env::FuzzSeedsFromEnv({1, 2}),
            (std::vector<uint64_t>{101, 202}));
}

TEST_F(FuzzSeedsEnvTest, MalformedTokensDropNotCrash) {
  // Regression: std::stoull threw (uncaught → abort) on "ten".
  setenv("APTSERVE_FUZZ_SEEDS", "ten,20", 1);
  EXPECT_EQ(env::FuzzSeedsFromEnv({1}), std::vector<uint64_t>{20});
  setenv("APTSERVE_FUZZ_SEEDS", "junk", 1);
  EXPECT_EQ(env::FuzzSeedsFromEnv({1, 2}), (std::vector<uint64_t>{1, 2}));
}

}  // namespace
}  // namespace aptserve
