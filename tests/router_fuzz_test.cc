// Property/fuzz tests for the fleet router: seeded random workloads
// (shared-prefix conversations mixed with Poisson singleton arrivals)
// swept across every policy and admission mode, asserting the structural
// invariants that must hold for ANY input:
//   - conservation: no request is lost — admitted + rejected == trace
//     size, shard sizes match the decision, assignments are in range;
//   - determinism: routing the same trace twice gives identical decisions,
//     and the routed fleet's merged report is bit-identical at 1 and 4
//     fleet threads (the epoch-barrier guarantee);
//   - accounting: per-instance stats sum to the fleet totals (latency
//     sample counts, iterations, prefill accounting, PrefixStats,
//     eligible/best-effort splits).
// The seed matrix is overridable via APTSERVE_FUZZ_SEEDS (comma-separated)
// so CI can fan out fixed seeds.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baselines/fcfs_scheduler.h"
#include "common/env.h"
#include "common/rng.h"
#include "serve/cost_model_backend.h"
#include "serve/fleet_controller.h"
#include "serve/multi_instance.h"
#include "serve/router.h"
#include "workload/arrival.h"
#include "workload/shared_prefix.h"

namespace aptserve {
namespace {

std::vector<uint64_t> FuzzSeeds() {
  // Strict parse with a warning on malformed tokens (std::stoull threw on
  // garbage and silently truncated partial parses like "4x").
  return env::FuzzSeedsFromEnv({1, 2, 3});
}

/// Mixed workload: a shared-prefix conversation block plus Poisson
/// singletons with random lengths, merged by arrival and re-id'd.
std::vector<Request> MixedTrace(uint64_t seed) {
  Rng rng(seed);
  SharedPrefixConfig cfg;
  cfg.system_prompt_len = static_cast<int32_t>(rng.UniformInt(8, 32));
  cfg.num_conversations = static_cast<int32_t>(rng.UniformInt(2, 6));
  cfg.turns_per_conversation = static_cast<int32_t>(rng.UniformInt(2, 4));
  cfg.tokens_per_turn = static_cast<int32_t>(rng.UniformInt(4, 16));
  cfg.output_len_mean = static_cast<int32_t>(rng.UniformInt(2, 8));
  cfg.vocab_size = 1000;
  cfg.think_time_s = rng.Uniform(0.5, 3.0);
  cfg.conversation_stagger_s = rng.Uniform(0.05, 0.5);
  cfg.seed = seed * 31 + 7;
  auto conv = BuildSharedPrefixTrace(cfg);
  EXPECT_TRUE(conv.ok());
  std::vector<Request> trace = *conv;

  const int32_t singles = static_cast<int32_t>(rng.UniformInt(10, 30));
  auto arrivals = PoissonArrivals(rng.Uniform(2.0, 12.0), singles, &rng);
  EXPECT_TRUE(arrivals.ok());
  for (int32_t i = 0; i < singles; ++i) {
    Request r;
    r.prompt_len = static_cast<int32_t>(rng.UniformInt(4, 100));
    r.output_len = static_cast<int32_t>(rng.UniformInt(1, 12));
    r.arrival = (*arrivals)[i];
    if (rng.Uniform() < 0.3) r.slo_ttft_s = rng.Uniform(0.001, 2.0);
    trace.push_back(r);
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival < b.arrival;
                   });
  for (size_t i = 0; i < trace.size(); ++i) {
    trace[i].id = static_cast<RequestId>(i);
  }
  return trace;
}

void ExpectDecisionInvariants(const RouteDecision& d, size_t trace_size,
                              int32_t n_instances) {
  ASSERT_EQ(d.assignment.size(), trace_size);
  ASSERT_EQ(d.best_effort.size(), trace_size);
  ASSERT_EQ(d.admitted_per_instance.size(),
            static_cast<size_t>(n_instances));
  int64_t admitted = 0, rejected = 0, deprioritized = 0;
  std::vector<int32_t> per(n_instances, 0);
  for (size_t i = 0; i < trace_size; ++i) {
    const int32_t a = d.assignment[i];
    if (a == RouteDecision::kRejected) {
      ++rejected;
      EXPECT_EQ(d.best_effort[i], 0);
      continue;
    }
    ASSERT_GE(a, 0);
    ASSERT_LT(a, n_instances);
    ++admitted;
    ++per[a];
    if (d.best_effort[i]) ++deprioritized;
  }
  EXPECT_EQ(admitted, d.admitted);
  EXPECT_EQ(rejected, d.rejected);
  EXPECT_EQ(deprioritized, d.deprioritized);
  EXPECT_EQ(admitted + rejected, static_cast<int64_t>(trace_size));
  EXPECT_EQ(per, d.admitted_per_instance);
}

void ExpectStatsSumToFleetTotals(const MultiInstanceResult& r,
                                 size_t trace_size) {
  int64_t requests = 0;
  for (int32_t c : r.requests_per_instance) requests += c;
  EXPECT_EQ(requests + r.rejected_requests,
            static_cast<int64_t>(trace_size));

  size_t ttft_samples = 0;
  int64_t iterations = 0, preemptions = 0;
  int64_t eligible = 0, best_effort = 0, slo_met = 0;
  for (const SloReport& rep : r.per_instance) {
    ttft_samples += rep.ttfts.count();
    iterations += rep.iterations;
    preemptions += rep.preemptions;
    eligible += rep.eligible_requests;
    best_effort += rep.best_effort_requests;
    slo_met += rep.slo_met_requests;
  }
  EXPECT_EQ(ttft_samples, r.combined.ttfts.count());
  EXPECT_EQ(iterations, r.combined.iterations);
  EXPECT_EQ(preemptions, r.combined.preemptions);
  EXPECT_EQ(eligible, r.combined.eligible_requests);
  EXPECT_EQ(best_effort, r.combined.best_effort_requests);
  EXPECT_EQ(slo_met, r.combined.slo_met_requests);
  // Every admitted request is either eligible or best-effort, and every
  // admitted request produced a first token.
  EXPECT_EQ(eligible + best_effort, requests);
  EXPECT_EQ(ttft_samples, static_cast<size_t>(requests));

  int64_t computed = 0, skipped = 0, hits = 0, matched = 0;
  for (size_t i = 0; i < r.per_instance.size(); ++i) {
    computed += r.prefill_computed_per_instance[i];
    skipped += r.prefill_skipped_per_instance[i];
    hits += r.prefix_per_instance[i].hits;
    matched += r.prefix_per_instance[i].matched_tokens;
  }
  EXPECT_EQ(computed, r.prefill_tokens_computed);
  EXPECT_EQ(skipped, r.prefill_tokens_skipped);
  EXPECT_EQ(hits, r.prefix.hits);
  EXPECT_EQ(matched, r.prefix.matched_tokens);
}

TEST(RouterFuzzTest, InvariantsAcrossPoliciesAdmissionAndSeeds) {
  const ModelSpec m = ModelSpec::Opt13B();
  const CostModel cm(m, ClusterSpec::ForModel(m));
  const SloSpec slo{1.0, 1.0};

  const RoutePolicy policies[] = {
      RoutePolicy::kRoundRobin, RoutePolicy::kLeastLoaded,
      RoutePolicy::kPowerOfTwo, RoutePolicy::kLeastOutstandingWork,
      RoutePolicy::kPrefixAffinity};
  const AdmissionMode admissions[] = {AdmissionMode::kNone,
                                      AdmissionMode::kReject,
                                      AdmissionMode::kDeprioritize};

  for (uint64_t seed : FuzzSeeds()) {
    const auto trace = MixedTrace(seed);
    for (RoutePolicy policy : policies) {
      for (AdmissionMode admission : admissions) {
        SCOPED_TRACE(std::string(RoutePolicyName(policy)) + " seed " +
                     std::to_string(seed) + " admission " +
                     std::to_string(static_cast<int>(admission)));
        RouterConfig rc;
        rc.n_instances = 3;
        rc.policy = policy;
        rc.block_size = 4;
        rc.admission = admission;
        rc.default_slo = SloSpec{2.0, 2.0};
        rc.default_output_len = 8.0;
        const Router router(rc, &cm);

        // Determinism: routing twice gives the same decision.
        const RouteDecision d1 = router.Route(trace);
        const RouteDecision d2 = router.Route(trace);
        EXPECT_EQ(d1.assignment, d2.assignment);
        EXPECT_EQ(d1.best_effort, d2.best_effort);
        EXPECT_EQ(d1.rejected, d2.rejected);
        ExpectDecisionInvariants(d1, trace.size(), rc.n_instances);

        // Serve the routed fleet; per-instance stats must sum to totals,
        // and the merged report must be thread-count independent.
        auto make_backend =
            [&](int32_t) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
          CostModelBackend::Options o;
          o.block_size = 4;
          o.pool_blocks_override = 512;
          o.enable_prefix_sharing = true;
          o.token_vocab = 1000;
          APT_ASSIGN_OR_RETURN(std::unique_ptr<CostModelBackend> backend,
                               CostModelBackend::Create(cm, o));
          return std::unique_ptr<ExecutionBackend>(std::move(backend));
        };
        auto make_scheduler = [] { return std::make_unique<FcfsScheduler>(); };

        RuntimeConfig serial;
        serial.num_threads = 1;
        MultiInstanceRunner runner(router, ServingLoopConfig{}, serial);
        auto result = runner.Run(trace, make_scheduler, make_backend, slo);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        ExpectStatsSumToFleetTotals(*result, trace.size());
        EXPECT_EQ(result->rejected_requests, d1.rejected);
        EXPECT_EQ(result->deprioritized_requests, d1.deprioritized);

        RuntimeConfig threaded;
        threaded.num_threads = 4;
        MultiInstanceRunner parallel(router, ServingLoopConfig{}, threaded);
        auto threaded_result =
            parallel.Run(trace, make_scheduler, make_backend, slo);
        ASSERT_TRUE(threaded_result.ok())
            << threaded_result.status().ToString();
        EXPECT_EQ(result->combined.total_serving_time,
                  threaded_result->combined.total_serving_time);
        EXPECT_EQ(result->combined.slo_attainment,
                  threaded_result->combined.slo_attainment);
        EXPECT_EQ(result->combined.goodput_rps,
                  threaded_result->combined.goodput_rps);
        EXPECT_EQ(result->combined.ttfts.samples(),
                  threaded_result->combined.ttfts.samples());
        EXPECT_EQ(result->prefill_tokens_skipped,
                  threaded_result->prefill_tokens_skipped);
        EXPECT_EQ(result->prefix.hits, threaded_result->prefix.hits);
      }
    }
  }
}

// Elastic fleets under the same seeded workloads: scaling policies plus
// live migration (cache state included) must preserve the structural
// invariants — conservation, per-instance sums, and 1-vs-4-thread
// bit-identity of both the serving report and the fleet metrics.
TEST(RouterFuzzTest, ElasticScalingAndMigrationInvariants) {
  const ModelSpec m = ModelSpec::Opt13B();
  const CostModel cm(m, ClusterSpec::ForModel(m));
  const SloSpec slo{2.0, 2.0};

  for (uint64_t seed : FuzzSeeds()) {
    const auto trace = MixedTrace(seed);
    SCOPED_TRACE("elastic seed " + std::to_string(seed));

    auto make_backend =
        [&](int32_t) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
      CostModelBackend::Options o;
      o.block_size = 4;
      o.pool_blocks_override = 256;  // small: queues and migrations form
      o.enable_prefix_sharing = true;
      o.token_vocab = 1000;
      APT_ASSIGN_OR_RETURN(std::unique_ptr<CostModelBackend> backend,
                           CostModelBackend::Create(cm, o));
      return std::unique_ptr<ExecutionBackend>(std::move(backend));
    };
    auto make_scheduler = [] { return std::make_unique<FcfsScheduler>(); };

    FleetResult results[2];
    const int32_t thread_counts[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
      FleetConfig cfg;
      cfg.router.n_instances = 2;
      cfg.router.policy = RoutePolicy::kLeastOutstandingWork;
      cfg.min_instances = 1;
      cfg.max_instances = 4;
      cfg.tick_interval_s = 0.4;
      cfg.instance_warmup_s = 0.2;
      cfg.scale_up_cooldown_s = 0.4;
      cfg.scale_down_cooldown_s = 2.0;
      cfg.scaling = {ScalingRule::QueueDepth(1.0, 0.1),
                     ScalingRule::TargetUtilization(0.8, 0.2)};
      cfg.enable_migration = true;
      cfg.migration_imbalance_threshold = 1.0;
      cfg.runtime.num_threads = thread_counts[i];
      FleetController controller(cfg, &cm);
      auto result = controller.Run(trace, make_scheduler, make_backend, slo);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      results[i] = std::move(*result);
    }

    // Conservation: every request was served somewhere (admission off).
    for (const FleetResult& r : results) {
      int64_t served = 0;
      for (int32_t c : r.serve.requests_per_instance) served += c;
      EXPECT_EQ(served + r.serve.rejected_requests,
                static_cast<int64_t>(trace.size()));
      EXPECT_EQ(r.serve.combined.eligible_requests +
                    r.serve.combined.best_effort_requests,
                static_cast<int64_t>(trace.size()));
      ExpectStatsSumToFleetTotals(r.serve, trace.size());
    }

    // Thread-count bit-identity of report and elasticity metrics.
    const SloReport& a = results[0].serve.combined;
    const SloReport& b = results[1].serve.combined;
    EXPECT_EQ(a.ttfts.samples(), b.ttfts.samples());
    EXPECT_EQ(a.p99_tbts.samples(), b.p99_tbts.samples());
    EXPECT_EQ(a.slo_attainment, b.slo_attainment);
    EXPECT_EQ(a.goodput_rps, b.goodput_rps);
    EXPECT_EQ(results[0].serve.requests_per_instance,
              results[1].serve.requests_per_instance);
    EXPECT_EQ(results[0].fleet.migrations, results[1].fleet.migrations);
    EXPECT_EQ(results[0].fleet.migrations_with_cache,
              results[1].fleet.migrations_with_cache);
    EXPECT_EQ(results[0].fleet.migration_bytes,
              results[1].fleet.migration_bytes);
    EXPECT_EQ(results[0].fleet.instance_seconds,
              results[1].fleet.instance_seconds);
    EXPECT_EQ(results[0].fleet.cold_starts, results[1].fleet.cold_starts);
    ASSERT_EQ(results[0].fleet.scale_events.size(),
              results[1].fleet.scale_events.size());
    for (size_t e = 0; e < results[0].fleet.scale_events.size(); ++e) {
      EXPECT_EQ(results[0].fleet.scale_events[e].time,
                results[1].fleet.scale_events[e].time);
      EXPECT_EQ(results[0].fleet.scale_events[e].instance,
                results[1].fleet.scale_events[e].instance);
      EXPECT_EQ(static_cast<int>(results[0].fleet.scale_events[e].kind),
                static_cast<int>(results[1].fleet.scale_events[e].kind));
    }
  }
}

// Hierarchical (fleet-of-fleets) routing under the same seeded workloads:
// a two-level fleet must keep every structural invariant of the flat one —
// conservation, per-cell sums folding into fleet totals, 1-vs-4-thread
// bit-identity — and the num_cells=1 configuration must be bit-for-bit the
// flat fleet (same shards, same reports, same prefix accounting).
TEST(RouterFuzzTest, HierarchicalFleetInvariants) {
  const ModelSpec m = ModelSpec::Opt13B();
  const CostModel cm(m, ClusterSpec::ForModel(m));
  const SloSpec slo{2.0, 2.0};

  auto make_backend =
      [&](int32_t) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
    CostModelBackend::Options o;
    o.block_size = 4;
    o.pool_blocks_override = 512;
    o.enable_prefix_sharing = true;
    o.token_vocab = 1000;
    APT_ASSIGN_OR_RETURN(std::unique_ptr<CostModelBackend> backend,
                         CostModelBackend::Create(cm, o));
    return std::unique_ptr<ExecutionBackend>(std::move(backend));
  };
  auto make_scheduler = [] { return std::make_unique<FcfsScheduler>(); };

  for (uint64_t seed : FuzzSeeds()) {
    const auto trace = MixedTrace(seed);
    for (int32_t num_cells : {1, 4}) {
      SCOPED_TRACE("hier seed " + std::to_string(seed) + " cells " +
                   std::to_string(num_cells));
      auto run = [&](int32_t threads) {
        FleetConfig cfg;
        cfg.router.n_instances = 8;
        cfg.router.policy = RoutePolicy::kPrefixAffinity;
        cfg.router.block_size = 4;
        cfg.cells.num_cells = num_cells;
        cfg.runtime.num_threads = threads;
        FleetController controller(cfg, &cm);
        auto result =
            controller.Run(trace, make_scheduler, make_backend, slo);
        EXPECT_TRUE(result.ok()) << result.status().ToString();
        return std::move(*result);
      };
      const FleetResult serial = run(1);
      const FleetResult threaded = run(4);

      // Conservation across cells: every request served exactly once, and
      // per-cell partial sums (grouped by the instance->cell map) fold
      // back into the fleet totals.
      ExpectStatsSumToFleetTotals(serial.serve, trace.size());
      EXPECT_EQ(serial.fleet.num_cells, num_cells);
      ASSERT_EQ(serial.fleet.instance_cell.size(),
                serial.serve.per_instance.size());
      std::vector<int64_t> cell_requests(num_cells, 0);
      std::vector<int64_t> cell_prefill(num_cells, 0);
      std::vector<int64_t> cell_hits(num_cells, 0);
      for (size_t i = 0; i < serial.fleet.instance_cell.size(); ++i) {
        const int32_t cell = serial.fleet.instance_cell[i];
        ASSERT_GE(cell, 0);
        ASSERT_LT(cell, num_cells);
        cell_requests[cell] += serial.serve.requests_per_instance[i];
        cell_prefill[cell] += serial.serve.prefill_computed_per_instance[i];
        cell_hits[cell] += serial.serve.prefix_per_instance[i].hits;
      }
      int64_t requests = 0, prefill = 0, hits = 0;
      for (int32_t c = 0; c < num_cells; ++c) {
        requests += cell_requests[c];
        prefill += cell_prefill[c];
        hits += cell_hits[c];
      }
      EXPECT_EQ(requests, static_cast<int64_t>(trace.size()));
      EXPECT_EQ(prefill, serial.serve.prefill_tokens_computed);
      EXPECT_EQ(hits, serial.serve.prefix.hits);
      if (num_cells > 1) {
        EXPECT_EQ(serial.serve.route_cost.cell_hash_routed +
                      serial.serve.route_cost.cell_fallback_routed,
                  serial.serve.route_cost.decisions);
      }

      // 1-vs-4-thread bit-identity (token streams, shards, counters).
      EXPECT_EQ(serial.serve.requests_per_instance,
                threaded.serve.requests_per_instance);
      EXPECT_EQ(serial.serve.combined.total_serving_time,
                threaded.serve.combined.total_serving_time);
      EXPECT_EQ(serial.serve.combined.ttfts.samples(),
                threaded.serve.combined.ttfts.samples());
      EXPECT_EQ(serial.serve.prefill_tokens_computed,
                threaded.serve.prefill_tokens_computed);
      EXPECT_EQ(serial.serve.prefill_tokens_skipped,
                threaded.serve.prefill_tokens_skipped);
      EXPECT_EQ(serial.serve.prefix.hits, threaded.serve.prefix.hits);
      EXPECT_EQ(serial.serve.tokens_generated,
                threaded.serve.tokens_generated);
      EXPECT_EQ(serial.serve.route_cost.instance_probes,
                threaded.serve.route_cost.instance_probes);
      EXPECT_EQ(serial.serve.route_cost.cell_probes,
                threaded.serve.route_cost.cell_probes);
      EXPECT_EQ(serial.fleet.instance_cell, threaded.fleet.instance_cell);

      // num_cells=1 is bit-for-bit the flat fleet.
      if (num_cells == 1) {
        RouterConfig rc;
        rc.n_instances = 8;
        rc.policy = RoutePolicy::kPrefixAffinity;
        rc.block_size = 4;
        RuntimeConfig serial_rt;
        serial_rt.num_threads = 1;
        MultiInstanceRunner flat(Router(rc, &cm), ServingLoopConfig{},
                                 serial_rt);
        auto flat_result =
            flat.Run(trace, make_scheduler, make_backend, slo);
        ASSERT_TRUE(flat_result.ok()) << flat_result.status().ToString();
        EXPECT_EQ(flat_result->requests_per_instance,
                  serial.serve.requests_per_instance);
        EXPECT_EQ(flat_result->combined.total_serving_time,
                  serial.serve.combined.total_serving_time);
        EXPECT_EQ(flat_result->combined.goodput_rps,
                  serial.serve.combined.goodput_rps);
        EXPECT_EQ(flat_result->prefill_tokens_computed,
                  serial.serve.prefill_tokens_computed);
        EXPECT_EQ(flat_result->prefill_tokens_skipped,
                  serial.serve.prefill_tokens_skipped);
        EXPECT_EQ(flat_result->prefix.hits, serial.serve.prefix.hits);
        EXPECT_EQ(flat_result->tokens_generated,
                  serial.serve.tokens_generated);
        EXPECT_EQ(flat_result->route_cost.instance_probes,
                  serial.serve.route_cost.instance_probes);
        EXPECT_EQ(flat_result->route_cost.mirror_nodes_walked,
                  serial.serve.route_cost.mirror_nodes_walked);
      }
    }
  }
}

}  // namespace
}  // namespace aptserve
