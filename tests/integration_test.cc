// Comparative integration tests: the paper's headline behaviours must
// emerge from the full stack (workload -> scheduler -> hybrid cache ->
// cost model -> metrics). These are the simulation analogues of the paper's
// key claims, at small scale so they run in milliseconds.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/fcfs_scheduler.h"
#include "baselines/random_scheduler.h"
#include "baselines/sarathi_scheduler.h"
#include "core/apt_scheduler.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace aptserve {
namespace {

CostModel Opt13() {
  const ModelSpec m = ModelSpec::Opt13B();
  return CostModel(m, ClusterSpec::ForModel(m));
}

StatusOr<SimulationResult> RunWith(Scheduler* sched,
                                   const std::vector<Request>& trace,
                                   const SloSpec& slo) {
  Simulator sim(Opt13(), SimulatorConfig{});
  return sim.Run(trace, sched, slo);
}

std::vector<Request> ShareGptTrace(double rate, int n = 250,
                                   uint64_t seed = 11, double cv = 1.0) {
  TraceConfig tc;
  tc.profile = DatasetProfile::ShareGpt();
  tc.num_requests = n;
  tc.rate_per_sec = rate;
  tc.cv = cv;
  tc.seed = seed;
  auto t = BuildTrace(tc);
  EXPECT_TRUE(t.ok());
  return *t;
}

// Paper Figure 1/2: vLLM's SLO attainment collapses as the request rate
// grows, driven by TTFT violations while TBT attainment stays high, and the
// system spends most of its time at the batch-size limit.
TEST(IntegrationTest, Figure2VllmTtftCollapseAtHighRate) {
  SloSpec slo{1.0, 1.0};
  FcfsScheduler low_s, high_s;
  auto low = RunWith(&low_s, ShareGptTrace(1.0), slo);
  auto high = RunWith(&high_s, ShareGptTrace(5.0), slo);
  ASSERT_TRUE(low.ok() && high.ok());
  EXPECT_GT(low->report.slo_attainment, 0.9);
  EXPECT_LT(high->report.slo_attainment, 0.5);
  // The collapse is TTFT-driven (Figure 2b).
  EXPECT_LT(high->report.ttft_attainment, 0.5);
  EXPECT_GT(high->report.tbt_attainment, 0.8);
  // Batch-limit time grows with the rate (Figure 2a right axis).
  EXPECT_GT(high->report.batch_limit_time_ratio,
            low->report.batch_limit_time_ratio);
}

// Paper Figure 4: random scheduling beats FCFS at overload because it
// avoids head-of-line convoys.
TEST(IntegrationTest, Figure4RandomBeatsFcfsAtOverload) {
  SloSpec slo{1.0, 1.0};
  FcfsScheduler fcfs;
  RandomScheduler random;
  auto trace = ShareGptTrace(3.4);
  auto rf = RunWith(&fcfs, trace, slo);
  auto rr = RunWith(&random, trace, slo);
  ASSERT_TRUE(rf.ok() && rr.ok());
  EXPECT_GT(rr->report.slo_attainment, rf->report.slo_attainment);
}

// Paper Figure 8 (headline): Apt-Serve sustains much higher request rates
// than vLLM at the same attainment level.
TEST(IntegrationTest, Figure8AptBeatsVllmAtHighRate) {
  SloSpec slo{1.0, 1.0};
  for (double rate : {3.0, 5.0, 8.0}) {
    FcfsScheduler vllm;
    AptConfig ac;
    ac.slo = slo;
    AptScheduler apt(ac);
    auto trace = ShareGptTrace(rate);
    auto rv = RunWith(&vllm, trace, slo);
    auto ra = RunWith(&apt, trace, slo);
    ASSERT_TRUE(rv.ok() && ra.ok());
    EXPECT_GT(ra->report.slo_attainment, rv->report.slo_attainment + 0.2)
        << "rate " << rate;
  }
}

// Paper Table 4: the hybrid cache lifts attainment over KV-only under the
// same adaptive scheduler, and the gain grows with pressure.
TEST(IntegrationTest, Table4HybridBeatsKvOnly) {
  SloSpec slo{1.0, 1.0};
  AptConfig hybrid_cfg;
  hybrid_cfg.slo = slo;
  AptConfig kv_cfg = hybrid_cfg;
  kv_cfg.enable_hidden = false;
  auto trace = ShareGptTrace(6.0, 250, 13, /*cv=*/5.0);
  AptScheduler hybrid(hybrid_cfg), kv_only(kv_cfg);
  auto rh = RunWith(&hybrid, trace, slo);
  auto rk = RunWith(&kv_only, trace, slo);
  ASSERT_TRUE(rh.ok() && rk.ok());
  EXPECT_GE(rh->report.slo_attainment, rk->report.slo_attainment);
  // Hidden cache must actually be exercised.
  EXPECT_GT(rh->report.conversions + rh->report.iterations, 0);
}

// Paper Table 5 / Figure 10: adaptive scheduling dominates FCFS by a wide
// margin under pressure.
TEST(IntegrationTest, Table5AdaptiveBeatsFcfs) {
  SloSpec slo{1.0, 1.0};
  auto trace = ShareGptTrace(5.0, 250, 17, /*cv=*/5.0);
  FcfsConfig fc;
  fc.allow_hidden_fallback = true;  // FCFS on the hybrid cache
  FcfsScheduler fcfs(fc);
  AptConfig ac;
  ac.slo = slo;
  AptScheduler apt(ac);
  auto rf = RunWith(&fcfs, trace, slo);
  auto ra = RunWith(&apt, trace, slo);
  ASSERT_TRUE(rf.ok() && ra.ok());
  EXPECT_GT(ra->report.slo_attainment, rf->report.slo_attainment + 0.2);
}

// Paper Figure 9: attainment degrades with burstiness for everyone, but
// Apt-Serve degrades more gracefully than vLLM.
TEST(IntegrationTest, Figure9BurstinessRobustness) {
  SloSpec slo{1.0, 1.0};
  double apt_prev = 1.1, fcfs_prev = 1.1;
  for (double cv : {1.0, 5.0, 10.0}) {
    auto trace = ShareGptTrace(2.5, 250, 23, cv);
    FcfsScheduler fcfs;
    AptConfig ac;
    ac.slo = slo;
    AptScheduler apt(ac);
    auto rf = RunWith(&fcfs, trace, slo);
    auto ra = RunWith(&apt, trace, slo);
    ASSERT_TRUE(rf.ok() && ra.ok());
    EXPECT_GE(ra->report.slo_attainment, rf->report.slo_attainment);
    // Monotone-ish degradation with CV (allow small noise).
    EXPECT_LE(ra->report.slo_attainment, apt_prev + 0.05);
    apt_prev = ra->report.slo_attainment;
    fcfs_prev = rf->report.slo_attainment;
  }
  (void)fcfs_prev;
}

// Paper §6.6: the decay variant (Apt-Serve*) trades a little attainment for
// a much lighter tail.
TEST(IntegrationTest, DecayVariantReducesTailLatency) {
  SloSpec slo{1.0, 1.0};
  auto trace = ShareGptTrace(6.0, 300, 29);
  AptConfig base;
  base.slo = slo;
  AptConfig decay = base;
  decay.violation_decay = 0.4;
  AptScheduler a(base), d(decay);
  auto ra = RunWith(&a, trace, slo);
  auto rd = RunWith(&d, trace, slo);
  ASSERT_TRUE(ra.ok() && rd.ok());
  // Tail TTFT (p99) improves with the decay factor.
  EXPECT_LT(rd->report.p99_ttft, ra->report.p99_ttft);
}

// Memory conservation across the whole run: the pool must end empty and
// peak usage within bounds for every scheduler (checked inside the
// simulator via CHECKs; here we assert the result reports).
TEST(IntegrationTest, PoolAccountingConservation) {
  SloSpec slo{1.0, 1.0};
  auto trace = ShareGptTrace(4.0, 150, 31);
  for (int kind = 0; kind < 3; ++kind) {
    std::unique_ptr<Scheduler> s;
    if (kind == 0) {
      s = std::make_unique<FcfsScheduler>();
    } else if (kind == 1) {
      s = std::make_unique<SarathiScheduler>();
    } else {
      AptConfig ac;
      ac.slo = slo;
      s = std::make_unique<AptScheduler>(ac);
    }
    Simulator sim(Opt13(), SimulatorConfig{});
    auto r = sim.Run(trace, s.get(), slo);
    ASSERT_TRUE(r.ok()) << s->name() << ": " << r.status().ToString();
    EXPECT_LE(r->peak_blocks, r->pool_blocks) << s->name();
    EXPECT_GT(r->peak_blocks, 0) << s->name();
  }
}

// Hidden cache must actually engage under pressure for Apt-Serve: some
// requests run with hidden cache (visible as conversions or hidden-type
// prefills reducing TTFT vs KV-only at the same trace).
TEST(IntegrationTest, HiddenCacheEngagesUnderPressure) {
  SloSpec slo{1.0, 1.0};
  auto trace = ShareGptTrace(8.0, 300, 37);
  AptConfig ac;
  ac.slo = slo;
  AptScheduler apt(ac);
  Simulator sim(Opt13(), SimulatorConfig{});
  auto r = sim.Run(trace, &apt, slo);
  ASSERT_TRUE(r.ok());
  AptConfig kc = ac;
  kc.enable_hidden = false;
  AptScheduler kv(kc);
  Simulator sim2(Opt13(), SimulatorConfig{});
  auto rk = sim2.Run(trace, &kv, slo);
  ASSERT_TRUE(rk.ok());
  EXPECT_GT(r->report.mean_batch_size, 0.9 * rk->report.mean_batch_size);
}

}  // namespace
}  // namespace aptserve
