#include "engine/block_storage.h"

#include <gtest/gtest.h>

#include <vector>

namespace aptserve {
namespace {

TEST(BlockStorageTest, WriteReadRoundTrip) {
  BlockStorage storage(4, 2, 3, 5);  // 4 blocks, size 2, 3 layers, dim 5
  CacheMap map(CacheType::kHidden, 2);
  map.AppendBlocks(CacheComponent::kHidden, {1, 3});
  map.AdvanceTokens(4);

  std::vector<float> vec = {1, 2, 3, 4, 5};
  storage.WriteVector(map, CacheComponent::kHidden, 2, 3, vec.data());
  std::vector<float> out(5, 0);
  storage.ReadVector(map, CacheComponent::kHidden, 2, 3, out.data());
  EXPECT_EQ(out, vec);
}

TEST(BlockStorageTest, LayersAreIndependent) {
  BlockStorage storage(2, 2, 2, 3);
  CacheMap map(CacheType::kHidden, 2);
  map.AppendBlocks(CacheComponent::kHidden, {0});
  map.AdvanceTokens(1);
  std::vector<float> a = {1, 1, 1}, b = {2, 2, 2};
  storage.WriteVector(map, CacheComponent::kHidden, 0, 0, a.data());
  storage.WriteVector(map, CacheComponent::kHidden, 1, 0, b.data());
  std::vector<float> out(3);
  storage.ReadVector(map, CacheComponent::kHidden, 0, 0, out.data());
  EXPECT_EQ(out, a);
  storage.ReadVector(map, CacheComponent::kHidden, 1, 0, out.data());
  EXPECT_EQ(out, b);
}

// Gather must reassemble fragmented, non-contiguous blocks in token order —
// the core of the paper's fused block-wise cache I/O kernel.
TEST(BlockStorageTest, GatherAcrossFragmentedBlocks) {
  const int32_t dim = 2;
  BlockStorage storage(8, 2, 1, dim);
  CacheMap map(CacheType::kHidden, 2);
  // Deliberately scattered, out-of-order physical blocks.
  map.AppendBlocks(CacheComponent::kHidden, {5, 0, 7});
  map.AdvanceTokens(6);
  for (int32_t pos = 0; pos < 6; ++pos) {
    std::vector<float> v = {static_cast<float>(pos), static_cast<float>(-pos)};
    storage.WriteVector(map, CacheComponent::kHidden, 0, pos, v.data());
  }
  std::vector<float> out(6 * dim, -99);
  storage.Gather(map, CacheComponent::kHidden, 0, 6, out.data());
  for (int32_t pos = 0; pos < 6; ++pos) {
    EXPECT_FLOAT_EQ(out[pos * dim], pos);
    EXPECT_FLOAT_EQ(out[pos * dim + 1], -pos);
  }
}

TEST(BlockStorageTest, GatherPartialPrefix) {
  BlockStorage storage(4, 4, 1, 1);
  CacheMap map(CacheType::kHidden, 4);
  map.AppendBlocks(CacheComponent::kHidden, {2, 1});
  map.AdvanceTokens(7);
  for (int32_t pos = 0; pos < 7; ++pos) {
    float v = pos * 10.0f;
    storage.WriteVector(map, CacheComponent::kHidden, 0, pos, &v);
  }
  std::vector<float> out(5, 0);
  storage.Gather(map, CacheComponent::kHidden, 0, 5, out.data());
  for (int32_t pos = 0; pos < 5; ++pos) EXPECT_FLOAT_EQ(out[pos], pos * 10.0f);
}

TEST(BlockStorageTest, KvComponentsShareBlocksDisjointly) {
  BlockStorage storage(4, 2, 1, 2);
  CacheMap map(CacheType::kKV, 2);
  map.AppendBlocks(CacheComponent::kKey, {0});
  map.AppendBlocks(CacheComponent::kValue, {1});
  map.AdvanceTokens(2);
  std::vector<float> k = {1, 2}, v = {3, 4};
  storage.WriteVector(map, CacheComponent::kKey, 0, 0, k.data());
  storage.WriteVector(map, CacheComponent::kValue, 0, 0, v.data());
  std::vector<float> out(2);
  storage.ReadVector(map, CacheComponent::kKey, 0, 0, out.data());
  EXPECT_EQ(out, k);
  storage.ReadVector(map, CacheComponent::kValue, 0, 0, out.data());
  EXPECT_EQ(out, v);
}

}  // namespace
}  // namespace aptserve
