// Shared helpers for scheduler unit tests: hand-built SimRequests and
// SchedulerInput views over a real pool/assigner.
#pragma once

#include <memory>
#include <vector>

#include "sim/scheduler.h"

namespace aptserve {
namespace testutil {

struct SchedulerFixture {
  explicit SchedulerFixture(int32_t pool_blocks = 256, int32_t block_size = 16)
      : pool(pool_blocks, block_size), assigner(&pool),
        cost_model(ModelSpec::Opt13B(),
                   ClusterSpec::ForModel(ModelSpec::Opt13B())) {}

  /// Creates a waiting request (no cache).
  SimRequest* AddWaiting(RequestId id, int32_t prompt, int32_t output,
                         TimePoint arrival) {
    auto sr = std::make_unique<SimRequest>();
    sr->spec = Request{id, prompt, output, arrival};
    sr->phase = RequestPhase::kWaiting;
    requests.push_back(std::move(sr));
    return requests.back().get();
  }

  /// Creates a running request with a resident cache of `cached` tokens and
  /// `generated` tokens already produced.
  SimRequest* AddRunning(RequestId id, int32_t prompt, int32_t output,
                         int32_t generated, CacheType type,
                         TimePoint last_token) {
    auto sr = std::make_unique<SimRequest>();
    sr->spec = Request{id, prompt, output, 0.0};
    sr->phase = RequestPhase::kRunning;
    sr->cache_type = type;
    sr->generated = generated;
    sr->cached_tokens = prompt + generated - 1;
    sr->has_first_token = true;
    sr->last_token_time = last_token;
    Status st = assigner.CreateFilled(id, type, sr->cached_tokens);
    APT_CHECK_MSG(st.ok(), st.ToString());
    requests.push_back(std::move(sr));
    return requests.back().get();
  }

  SchedulerInput Input(TimePoint now) {
    SchedulerInput in;
    in.now = now;
    in.pool = &pool;
    in.assigner = &assigner;
    in.cost_model = &cost_model;
    for (const auto& sr : requests) {
      if (sr->phase == RequestPhase::kWaiting) {
        in.waiting.push_back(sr.get());
      } else if (sr->phase == RequestPhase::kRunning) {
        in.running.push_back(sr.get());
      }
    }
    return in;
  }

  BlockPool pool;
  HybridCacheAssigner assigner;
  CostModel cost_model;
  std::vector<std::unique_ptr<SimRequest>> requests;
};

inline bool HasItem(const BatchPlan& plan, RequestId id) {
  for (const auto& item : plan.items) {
    if (item.id == id) return true;
  }
  return false;
}

inline const ScheduledItem* FindItem(const BatchPlan& plan, RequestId id) {
  for (const auto& item : plan.items) {
    if (item.id == id) return &item;
  }
  return nullptr;
}

inline bool HasPreempt(const BatchPlan& plan, RequestId id) {
  for (const auto& p : plan.preempt) {
    if (p.id == id) return true;
  }
  return false;
}

}  // namespace testutil
}  // namespace aptserve
