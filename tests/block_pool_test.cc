#include "cache/block_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace aptserve {
namespace {

TEST(BlockPoolTest, InitialState) {
  BlockPool pool(8, 16);
  EXPECT_EQ(pool.num_blocks(), 8);
  EXPECT_EQ(pool.block_size(), 16);
  EXPECT_EQ(pool.num_free(), 8);
  EXPECT_EQ(pool.num_allocated(), 0);
  EXPECT_DOUBLE_EQ(pool.utilization(), 0.0);
}

TEST(BlockPoolTest, AllocateAscendingAndUnique) {
  BlockPool pool(4, 16);
  std::set<BlockId> seen;
  for (int i = 0; i < 4; ++i) {
    auto b = pool.Allocate();
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*b, i);  // deterministic ascending order
    EXPECT_TRUE(seen.insert(*b).second);
    EXPECT_TRUE(pool.IsAllocated(*b));
  }
  EXPECT_EQ(pool.num_free(), 0);
  EXPECT_TRUE(pool.Allocate().status().IsOutOfMemory());
}

TEST(BlockPoolTest, FreeAndReuse) {
  BlockPool pool(2, 4);
  auto a = pool.Allocate();
  auto b = pool.Allocate();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(pool.Free(*a).ok());
  EXPECT_FALSE(pool.IsAllocated(*a));
  auto c = pool.Allocate();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);  // LIFO reuse
}

TEST(BlockPoolTest, DoubleFreeRejected) {
  BlockPool pool(2, 4);
  auto a = pool.Allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(pool.Free(*a).ok());
  Status s = pool.Free(*a);
  EXPECT_TRUE(s.IsInvalidArgument());
  // The message names the offending block so sharing bugs are debuggable.
  EXPECT_NE(s.ToString().find("block " + std::to_string(*a)),
            std::string::npos)
      << s.ToString();
}

TEST(BlockPoolTest, RefCountsShareAndFreeOnLastRelease) {
  BlockPool pool(2, 4);
  auto a = pool.Allocate();
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(pool.RefCount(*a), 1);
  ASSERT_TRUE(pool.Ref(*a).ok());
  ASSERT_TRUE(pool.Ref(*a).ok());
  EXPECT_EQ(pool.RefCount(*a), 3);
  EXPECT_EQ(pool.num_shared(), 1);
  // Intermediate releases keep the block allocated.
  ASSERT_TRUE(pool.Free(*a).ok());
  ASSERT_TRUE(pool.Free(*a).ok());
  EXPECT_TRUE(pool.IsAllocated(*a));
  EXPECT_EQ(pool.num_free(), 1);
  // The last owner's release frees it.
  ASSERT_TRUE(pool.Free(*a).ok());
  EXPECT_FALSE(pool.IsAllocated(*a));
  EXPECT_EQ(pool.num_free(), 2);
  EXPECT_EQ(pool.RefCount(*a), 0);
}

TEST(BlockPoolTest, RefRejectsFreeAndOutOfRangeBlocks) {
  BlockPool pool(2, 4);
  EXPECT_TRUE(pool.Ref(0).IsInvalidArgument());   // free block
  EXPECT_TRUE(pool.Ref(-1).IsInvalidArgument());  // out of range
  EXPECT_TRUE(pool.Ref(2).IsInvalidArgument());
  EXPECT_EQ(pool.RefCount(-1), 0);
  EXPECT_EQ(pool.RefCount(5), 0);
}

TEST(BlockPoolTest, DebugStringDumpsSharingInvariants) {
  BlockPool pool(4, 8);
  auto a = pool.Allocate();
  auto b = pool.Allocate();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(pool.Ref(*a).ok());
  const std::string dump = pool.DebugString();
  EXPECT_NE(dump.find("blocks=4"), std::string::npos) << dump;
  EXPECT_NE(dump.find("free=2"), std::string::npos) << dump;
  EXPECT_NE(dump.find("allocated=2"), std::string::npos) << dump;
  EXPECT_NE(dump.find("shared=1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("max_refcount=2"), std::string::npos) << dump;
  // Histogram: 2 free blocks, 1 single-owner, 1 double-owner.
  EXPECT_NE(dump.find("0x2"), std::string::npos) << dump;
  EXPECT_NE(dump.find("1x1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("2x1"), std::string::npos) << dump;
}

TEST(BlockPoolTest, FreeOutOfRangeRejected) {
  BlockPool pool(2, 4);
  EXPECT_TRUE(pool.Free(-1).IsInvalidArgument());
  EXPECT_TRUE(pool.Free(2).IsInvalidArgument());
}

TEST(BlockPoolTest, AllocateManyAllOrNothing) {
  BlockPool pool(5, 4);
  std::vector<BlockId> out;
  ASSERT_TRUE(pool.AllocateMany(3, &out).ok());
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(pool.num_free(), 2);
  std::vector<BlockId> out2;
  Status s = pool.AllocateMany(3, &out2);
  EXPECT_TRUE(s.IsOutOfMemory());
  EXPECT_TRUE(out2.empty());
  EXPECT_EQ(pool.num_free(), 2);  // unchanged on failure
}

TEST(BlockPoolTest, AllocateManyAppendsToExisting) {
  BlockPool pool(4, 4);
  std::vector<BlockId> out = {99};
  ASSERT_TRUE(pool.AllocateMany(2, &out).ok());
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 99);
}

TEST(BlockPoolTest, NegativeCountRejected) {
  BlockPool pool(4, 4);
  std::vector<BlockId> out;
  EXPECT_TRUE(pool.AllocateMany(-1, &out).IsInvalidArgument());
}

TEST(BlockPoolTest, PeakAndTotalsTracked) {
  BlockPool pool(4, 4);
  std::vector<BlockId> out;
  ASSERT_TRUE(pool.AllocateMany(3, &out).ok());
  pool.FreeMany(out);
  EXPECT_EQ(pool.peak_allocated(), 3);
  EXPECT_EQ(pool.total_allocations(), 3);
  EXPECT_EQ(pool.num_free(), 4);
  auto b = pool.Allocate();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(pool.peak_allocated(), 3);  // peak unchanged
  EXPECT_EQ(pool.total_allocations(), 4);
}

TEST(BlockPoolTest, UtilizationFraction) {
  BlockPool pool(4, 4);
  std::vector<BlockId> out;
  ASSERT_TRUE(pool.AllocateMany(2, &out).ok());
  EXPECT_DOUBLE_EQ(pool.utilization(), 0.5);
}

TEST(BlockPoolTest, ZeroBlockPool) {
  BlockPool pool(0, 4);
  EXPECT_EQ(pool.num_free(), 0);
  EXPECT_TRUE(pool.Allocate().status().IsOutOfMemory());
  EXPECT_DOUBLE_EQ(pool.utilization(), 0.0);
}

// Stress: interleaved allocate/free cycles keep the free-list consistent.
TEST(BlockPoolTest, StressInterleavedAllocFree) {
  BlockPool pool(64, 8);
  std::vector<BlockId> held;
  uint64_t x = 88172645463325252ULL;  // xorshift
  auto next = [&]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (int step = 0; step < 10000; ++step) {
    if (held.empty() || (next() % 2 == 0 && pool.num_free() > 0)) {
      auto b = pool.Allocate();
      ASSERT_TRUE(b.ok());
      held.push_back(*b);
    } else {
      const size_t i = next() % held.size();
      ASSERT_TRUE(pool.Free(held[i]).ok());
      held.erase(held.begin() + i);
    }
    ASSERT_EQ(pool.num_allocated(), static_cast<int32_t>(held.size()));
  }
}

}  // namespace
}  // namespace aptserve
