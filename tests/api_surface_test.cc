// Compiles the umbrella header and exercises a minimal end-to-end flow
// through it — guards the public API surface against bitrot.
#include "src/apt_serve.h"

#include <gtest/gtest.h>

namespace aptserve {
namespace {

TEST(ApiSurfaceTest, UmbrellaHeaderEndToEnd) {
  // Workload -> scheduler -> simulator, all through apt_serve.h.
  TraceConfig tc;
  tc.profile = DatasetProfile::HumanEval();
  tc.num_requests = 30;
  tc.rate_per_sec = 2.0;
  auto trace = BuildTrace(tc);
  ASSERT_TRUE(trace.ok());
  const SloSpec slo{1.0, 1.0};
  AptConfig cfg;
  cfg.slo = slo;
  AptScheduler scheduler(cfg);
  const ModelSpec model = ModelSpec::Opt13B();
  CostModel cost(model, ClusterSpec::ForModel(model));
  Simulator sim(cost, SimulatorConfig{});
  auto result = sim.Run(*trace, &scheduler, slo);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records.size(), 30u);

  // Engine path through the same header.
  InferenceEngine engine(ModelConfig::Tiny(), 1, 32, 4);
  ASSERT_TRUE(engine.AddRequest(1, {1, 2, 3}, CacheType::kHidden).ok());
  auto tokens = engine.Generate(1, 4);
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 7u);
}

// Hand-checked attention on a deliberately tiny configuration: a model
// with d_model = n_heads = 1 reduces attention at position 1 to
//   softmax(q*k0, q*k1) . (v0, v1),
// verifiable by hand through the CachedStep path.
TEST(AttentionHandCheckTest, SingleHeadScalarAttention) {
  ModelConfig cfg;
  cfg.vocab_size = 4;
  cfg.d_model = 1;
  cfg.n_heads = 1;
  cfg.n_layers = 1;
  cfg.d_ff = 1;
  cfg.max_seq_len = 8;
  ModelWeights w = ModelWeights::Random(cfg, 3);
  // Overwrite with hand-picked values. LayerNorm of a single element is
  // always 0 * gain + bias; set gains/biases so the pipeline is tractable:
  // ln1 output == 1 (bias 1), making q = wq, k = wk, v = wv constants.
  w.token_embedding = Tensor({4, 1}, {0.0f, 1.0f, 2.0f, 3.0f});
  w.position_embedding = Tensor({8, 1}, {0, 0, 0, 0, 0, 0, 0, 0});
  auto& lw = w.layers[0];
  lw.ln1_gain = Tensor({1}, {1.0f});
  lw.ln1_bias = Tensor({1}, {1.0f});
  lw.wq = Tensor({1, 1}, {2.0f});
  lw.wk = Tensor({1, 1}, {3.0f});
  lw.wv = Tensor({1, 1}, {5.0f});
  lw.wo = Tensor({1, 1}, {1.0f});
  // Disable the FFN: w2 * relu(w1 * ln2) with w1 = 0 contributes 0.
  lw.w1 = Tensor({1, 1}, {0.0f});
  lw.w2 = Tensor({1, 1}, {0.0f});
  lw.ln2_gain = Tensor({1}, {1.0f});
  lw.ln2_bias = Tensor({1}, {0.0f});
  w.final_ln_gain = Tensor({1}, {1.0f});
  w.final_ln_bias = Tensor({1}, {1.0f});

  TransformerModel model(std::move(w));
  // Every position: ln1(x) = bias = 1 => q = 2, k = 3, v = 5 regardless of
  // token. Attention output = 5 (weighted average of identical values);
  // residual x' = x + wo * 5 = x + 5. Final LN output = 1 (bias), so
  // logits = token_embedding * 1 = {0, 1, 2, 3} for every input.
  auto logits = model.ForwardFull({1, 2});
  ASSERT_TRUE(logits.ok());
  ASSERT_EQ(logits->size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR((*logits)[i], static_cast<float>(i), 1e-5);
  }
}

TEST(SimulatorEdgeTest, SimultaneousArrivalsAllServed) {
  std::vector<Request> trace;
  for (int i = 0; i < 20; ++i) {
    trace.push_back(Request{i, 64, 8, 0.0});  // all at t = 0
  }
  const SloSpec slo{30.0, 30.0};
  FcfsScheduler sched;
  const ModelSpec model = ModelSpec::Opt13B();
  CostModel cm(model, ClusterSpec::ForModel(model));
  Simulator sim(cm, SimulatorConfig{});
  auto r = sim.Run(trace, &sched, slo);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->report.ttfts.count(), 20u);
}

TEST(SimulatorEdgeTest, SingleTokenOutputsHaveNoTbt) {
  std::vector<Request> trace;
  for (int i = 0; i < 10; ++i) trace.push_back(Request{i, 32, 1, i * 0.1});
  const SloSpec slo{10.0, 10.0};
  FcfsScheduler sched;
  const ModelSpec model = ModelSpec::Opt13B();
  CostModel cm(model, ClusterSpec::ForModel(model));
  Simulator sim(cm, SimulatorConfig{});
  auto r = sim.Run(trace, &sched, slo);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->report.p99_tbts.count(), 0u);  // nobody decoded twice
  EXPECT_DOUBLE_EQ(r->report.tbt_attainment, 1.0);  // vacuously met
}

TEST(SimulatorEdgeTest, PoolExactlyOneRequestWide) {
  // The pool holds exactly one KV request; FCFS must serialize them.
  std::vector<Request> trace;
  for (int i = 0; i < 4; ++i) trace.push_back(Request{i, 60, 4, 0.0});
  const SloSpec slo{1e6, 1e6};
  FcfsScheduler sched;
  const ModelSpec model = ModelSpec::Opt13B();
  CostModel cm(model, ClusterSpec::ForModel(model));
  SimulatorConfig sc;
  sc.pool_blocks_override = 8;  // KV(64 tokens) = 8 blocks
  Simulator sim(cm, sc);
  auto r = sim.Run(trace, &sched, slo);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->report.ttfts.count(), 4u);
  EXPECT_LE(r->report.mean_batch_size, 1.01);
}

TEST(SimulatorEdgeTest, UnsortedTraceHandled) {
  std::vector<Request> trace = {{0, 32, 4, 5.0}, {1, 32, 4, 1.0},
                                {2, 32, 4, 3.0}};
  const SloSpec slo{10.0, 10.0};
  FcfsScheduler sched;
  const ModelSpec model = ModelSpec::Opt13B();
  CostModel cm(model, ClusterSpec::ForModel(model));
  Simulator sim(cm, SimulatorConfig{});
  auto r = sim.Run(trace, &sched, slo);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->report.ttfts.count(), 3u);
}

}  // namespace
}  // namespace aptserve
