#include "cache/swap_space.h"

#include <gtest/gtest.h>

#include "baselines/fcfs_scheduler.h"
#include "core/apt_scheduler.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace aptserve {
namespace {

TEST(SwapSpaceTest, AccountingRoundTrip) {
  SwapSpace swap(10);
  EXPECT_EQ(swap.free_blocks(), 10);
  ASSERT_TRUE(swap.SwapOut(1, CacheType::kKV, 32, 4).ok());
  EXPECT_TRUE(swap.Contains(1));
  EXPECT_EQ(swap.used_blocks(), 4);
  auto e = swap.SwapIn(1);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->tokens, 32);
  EXPECT_EQ(e->blocks, 4);
  EXPECT_EQ(e->type, CacheType::kKV);
  EXPECT_EQ(swap.used_blocks(), 0);
  EXPECT_FALSE(swap.Contains(1));
  EXPECT_EQ(swap.total_swap_outs(), 1);
  EXPECT_EQ(swap.total_swap_ins(), 1);
}

TEST(SwapSpaceTest, CapacityEnforced) {
  SwapSpace swap(8);
  ASSERT_TRUE(swap.SwapOut(1, CacheType::kKV, 40, 6).ok());
  EXPECT_TRUE(swap.SwapOut(2, CacheType::kKV, 40, 6).IsOutOfMemory());
  ASSERT_TRUE(swap.SwapOut(2, CacheType::kHidden, 8, 2).ok());
  EXPECT_EQ(swap.free_blocks(), 0);
}

TEST(SwapSpaceTest, DuplicateAndMissingRejected) {
  SwapSpace swap(8);
  ASSERT_TRUE(swap.SwapOut(1, CacheType::kKV, 8, 2).ok());
  EXPECT_TRUE(swap.SwapOut(1, CacheType::kKV, 8, 2).IsAlreadyExists());
  EXPECT_TRUE(swap.SwapIn(9).status().IsNotFound());
  EXPECT_TRUE(swap.Drop(9).IsNotFound());
}

TEST(SwapSpaceTest, DropFreesWithoutRestore) {
  SwapSpace swap(8);
  ASSERT_TRUE(swap.SwapOut(1, CacheType::kHidden, 16, 4).ok());
  ASSERT_TRUE(swap.Drop(1).ok());
  EXPECT_EQ(swap.used_blocks(), 0);
  EXPECT_EQ(swap.total_swap_ins(), 0);
}

TEST(SwapSpaceTest, InvalidEntriesRejected) {
  SwapSpace swap(8);
  EXPECT_TRUE(swap.SwapOut(1, CacheType::kKV, 0, 2).IsInvalidArgument());
  EXPECT_TRUE(swap.SwapOut(1, CacheType::kKV, 8, 0).IsInvalidArgument());
}

// ---- Simulator integration ----

std::vector<Request> PressureTrace(int n = 200, uint64_t seed = 41) {
  TraceConfig tc;
  tc.profile = DatasetProfile::ShareGpt();
  tc.num_requests = n;
  tc.rate_per_sec = 6.0;
  tc.cv = 5.0;
  tc.seed = seed;
  auto t = BuildTrace(tc);
  EXPECT_TRUE(t.ok());
  return *t;
}

CostModel Opt13() {
  const ModelSpec m = ModelSpec::Opt13B();
  return CostModel(m, ClusterSpec::ForModel(m));
}

TEST(SwapPreemptionTest, SwapModeCompletesAndSwaps) {
  const SloSpec slo{1.0, 1.0};
  SimulatorConfig cfg;
  cfg.preemption_mode = PreemptionMode::kSwap;
  cfg.pool_blocks_override = 400;  // tight: forces preemptions
  AptConfig ac;
  ac.slo = slo;
  AptScheduler sched(ac);
  Simulator sim(Opt13(), cfg);
  auto r = sim.Run(PressureTrace(), &sched, slo);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->swap_outs, 0);
  EXPECT_EQ(r->swap_outs, r->swap_ins);  // everything swapped back in
}

TEST(SwapPreemptionTest, RecomputeModeNeverSwaps) {
  const SloSpec slo{1.0, 1.0};
  SimulatorConfig cfg;
  cfg.pool_blocks_override = 400;
  AptConfig ac;
  ac.slo = slo;
  AptScheduler sched(ac);
  Simulator sim(Opt13(), cfg);
  auto r = sim.Run(PressureTrace(), &sched, slo);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->swap_outs, 0);
}

TEST(SwapPreemptionTest, SwapReducesPrefillRecompute) {
  // Swapped requests skip the recompute prefill, so the swap-mode run
  // performs fewer prefill iterations under identical preemption pressure.
  const SloSpec slo{1.0, 1.0};
  auto trace = PressureTrace(250, 43);
  SimulatorConfig rec_cfg, swap_cfg;
  rec_cfg.pool_blocks_override = swap_cfg.pool_blocks_override = 400;
  swap_cfg.preemption_mode = PreemptionMode::kSwap;
  FcfsScheduler s1, s2;
  Simulator rec(Opt13(), rec_cfg), swp(Opt13(), swap_cfg);
  auto r_rec = rec.Run(trace, &s1, slo);
  auto r_swp = swp.Run(trace, &s2, slo);
  ASSERT_TRUE(r_rec.ok() && r_swp.ok());
  if (r_swp->swap_outs > 0) {
    EXPECT_LE(r_swp->prefill_iterations, r_rec->prefill_iterations);
  }
}

TEST(SwapPreemptionTest, TinySwapSpaceFallsBackToRecompute) {
  const SloSpec slo{1.0, 1.0};
  SimulatorConfig cfg;
  cfg.preemption_mode = PreemptionMode::kSwap;
  cfg.pool_blocks_override = 400;
  cfg.swap_blocks = 1;  // nothing fits: every preemption falls back
  AptConfig ac;
  ac.slo = slo;
  AptScheduler sched(ac);
  Simulator sim(Opt13(), cfg);
  auto r = sim.Run(PressureTrace(), &sched, slo);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->swap_outs, 0);
}

}  // namespace
}  // namespace aptserve
