#include "core/length_predictor.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/apt_scheduler.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace aptserve {
namespace {

TEST(LengthPredictorTest, FallsBackToDefaultWhenEmpty) {
  OutputLengthPredictor p;
  EXPECT_DOUBLE_EQ(p.PredictMean(100, 64.0), 64.0);
  EXPECT_DOUBLE_EQ(p.PredictQuantile(100, 0.9, 64.0), 64.0);
}

TEST(LengthPredictorTest, GlobalFallbackBeforeBucketFills) {
  OutputLengthPredictor p(2048, 8);
  // Feed a different bucket (long prompts) until the global estimator has
  // enough mass.
  for (int i = 0; i < 20; ++i) p.Observe(2000, 100);
  // Short-prompt bucket is empty -> global mean used.
  EXPECT_NEAR(p.PredictMean(10), 100.0, 1e-9);
}

TEST(LengthPredictorTest, BucketsSeparateRegimes) {
  OutputLengthPredictor p(2048, 8);
  for (int i = 0; i < 50; ++i) {
    p.Observe(100, 400);   // short prompts -> long outputs
    p.Observe(1900, 20);   // long prompts -> short outputs
  }
  EXPECT_NEAR(p.PredictMean(100), 400.0, 1.0);
  EXPECT_NEAR(p.PredictMean(1900), 20.0, 1.0);
  EXPECT_EQ(p.observations(), 100);
}

TEST(LengthPredictorTest, QuantileIsConservative) {
  OutputLengthPredictor p(2048, 4);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    p.Observe(100, static_cast<int32_t>(rng.UniformInt(50, 150)));
  }
  EXPECT_GT(p.PredictQuantile(100, 0.9), p.PredictMean(100));
  EXPECT_LT(p.PredictQuantile(100, 0.1), p.PredictMean(100));
}

TEST(LengthPredictorTest, PromptLengthsClampToBuckets) {
  OutputLengthPredictor p(100, 4);
  p.Observe(-5, 10);
  p.Observe(1000, 10);  // beyond max_prompt_len clamps to the last bucket
  EXPECT_EQ(p.observations(), 2);
}

// The predictive scheduler must still serve correctly and learn online.
TEST(PredictiveAptTest, ServesAndLearns) {
  TraceConfig tc;
  tc.profile = DatasetProfile::ShareGpt();
  tc.num_requests = 200;
  tc.rate_per_sec = 5.0;
  tc.seed = 21;
  auto trace = BuildTrace(tc);
  ASSERT_TRUE(trace.ok());
  const SloSpec slo{1.0, 1.0};
  AptConfig cfg;
  cfg.slo = slo;
  cfg.enable_prediction = true;
  AptScheduler sched(cfg);
  const ModelSpec model = ModelSpec::Opt13B();
  CostModel cm(model, ClusterSpec::ForModel(model));
  Simulator sim(cm, SimulatorConfig{});
  auto result = sim.Run(*trace, &sched, slo);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->report.ttfts.count(), 200u);
  // The predictor observed (nearly) every completed request.
  EXPECT_GT(sched.predictor().observations(), 150);
}

TEST(PredictiveAptTest, PredictionReducesPreemptionsUnderPressure) {
  // Long outputs + tight memory: admitting on current size alone
  // over-commits and preempts later; predicted-size admission should not
  // preempt more.
  TraceConfig tc;
  tc.profile = DatasetProfile::ShareGpt();
  tc.num_requests = 250;
  tc.rate_per_sec = 6.0;
  tc.seed = 33;
  auto trace = BuildTrace(tc);
  ASSERT_TRUE(trace.ok());
  const SloSpec slo{1.0, 1.0};
  const ModelSpec model = ModelSpec::Opt13B();
  CostModel cm(model, ClusterSpec::ForModel(model));

  AptConfig base;
  base.slo = slo;
  AptConfig pred = base;
  pred.enable_prediction = true;
  AptScheduler s_base(base), s_pred(pred);
  Simulator sim1(cm, SimulatorConfig{}), sim2(cm, SimulatorConfig{});
  auto r_base = sim1.Run(*trace, &s_base, slo);
  auto r_pred = sim2.Run(*trace, &s_pred, slo);
  ASSERT_TRUE(r_base.ok() && r_pred.ok());
  EXPECT_LE(r_pred->report.preemptions,
            r_base->report.preemptions * 1.2 + 10);
}

}  // namespace
}  // namespace aptserve
