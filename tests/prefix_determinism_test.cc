// Prefix sharing must be invisible in the tokens and identical in its hit
// accounting across execution backends:
//   - ServingEngine token streams are bit-identical with the index on and
//     off, at any thread count (APTSERVE_NUM_THREADS included): adopted
//     K/V blocks of a causal transformer equal the recomputed ones, and
//     greedy sampling depends only on a request's own content.
//   - The analytic CostModelBackend mirrors the engine's matching rules
//     exactly, so the same trace under the same scheduler produces the
//     same lookup/hit/match accounting on both backends while its modeled
//     TTFT drops.
#include <gtest/gtest.h>

#include <vector>

#include "backend_diff_util.h"
#include "baselines/fcfs_scheduler.h"
#include "engine/serving_engine.h"
#include "sim/simulator.h"
#include "workload/shared_prefix.h"
#include "workload/token_ids.h"

namespace aptserve {
namespace {

std::vector<Request> Trace() {
  SharedPrefixConfig cfg;
  cfg.system_prompt_len = 16;
  cfg.num_conversations = 3;
  cfg.turns_per_conversation = 2;
  cfg.tokens_per_turn = 8;
  cfg.output_len_mean = 4;
  cfg.vocab_size = ModelConfig::Tiny().vocab_size;
  cfg.think_time_s = 2.0;
  cfg.conversation_stagger_s = 0.25;
  auto trace = BuildSharedPrefixTrace(cfg);
  EXPECT_TRUE(trace.ok());
  return *trace;
}

ServingEngineConfig EngineCfg(bool sharing, int32_t threads = 0) {
  ServingEngineConfig cfg;
  cfg.model = ModelConfig::Tiny();
  cfg.num_blocks = 256;
  cfg.block_size = 4;
  cfg.slo = SloSpec{10.0, 10.0};
  cfg.calibrate_rho = false;
  cfg.virtual_timing = true;  // deterministic timeline
  cfg.enable_prefix_sharing = sharing;
  if (threads > 0) cfg.runtime.num_threads = threads;
  return cfg;
}

StatusOr<ServingEngineResult> RunEngine(const std::vector<Request>& trace,
                                        bool sharing, int32_t threads = 0) {
  ServingEngine serving(EngineCfg(sharing, threads));
  FcfsScheduler sched;
  return serving.Serve(trace, &sched);
}

TEST(PrefixDeterminismTest, TokensBitIdenticalWithIndexOnAndOff) {
  const auto trace = Trace();
  auto off = RunEngine(trace, false);
  auto on = RunEngine(trace, true);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  ASSERT_TRUE(on.ok()) << on.status().ToString();

  // Sharing did real work on this trace...
  EXPECT_GT(on->prefix.hits, 0);
  EXPECT_GT(on->prefill_tokens_skipped, 0);
  EXPECT_LT(on->prefill_tokens_computed, off->prefill_tokens_computed);
  EXPECT_EQ(off->prefill_tokens_skipped, 0);
  // ...and was invisible in every token stream.
  ASSERT_EQ(off->tokens.size(), on->tokens.size());
  for (const auto& [id, toks] : off->tokens) {
    auto it = on->tokens.find(id);
    ASSERT_NE(it, on->tokens.end());
    EXPECT_EQ(toks, it->second) << "request " << id;
  }
}

TEST(PrefixDeterminismTest, TokensBitIdenticalAcrossThreadCounts) {
  // The default-constructed runtime resolves APTSERVE_NUM_THREADS, so the
  // CI matrix also exercises this with a forced thread count; the explicit
  // 1/2/4 sweep below makes the invariant independent of the environment.
  const auto trace = Trace();
  auto ref = RunEngine(trace, true, 1);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  for (int32_t threads : {2, 4}) {
    auto r = RunEngine(trace, true, threads);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->prefix.hits, ref->prefix.hits);
    EXPECT_EQ(r->prefix.matched_tokens, ref->prefix.matched_tokens);
    // Virtual timing: the whole latency report reproduces too.
    EXPECT_DOUBLE_EQ(r->report.mean_ttft, ref->report.mean_ttft);
    ASSERT_EQ(r->tokens.size(), ref->tokens.size());
    for (const auto& [id, toks] : ref->tokens) {
      auto it = r->tokens.find(id);
      ASSERT_NE(it, r->tokens.end());
      EXPECT_EQ(toks, it->second)
          << "request " << id << " at " << threads << " threads";
    }
  }
}

TEST(PrefixDeterminismTest, CostModelBackendSkipsPrefillAndLowersTtft) {
  const auto trace = Trace();
  const ModelSpec m = ModelSpec::Opt13B();
  CostModel cm(m, ClusterSpec::ForModel(m));
  SimulatorConfig cfg;
  cfg.block_size = 4;
  cfg.pool_blocks_override = 256;

  FcfsScheduler s_off, s_on;
  Simulator off_sim(cm, cfg);
  auto off = off_sim.Run(trace, &s_off, SloSpec{10.0, 10.0});
  cfg.enable_prefix_sharing = true;
  Simulator on_sim(cm, cfg);
  auto on = on_sim.Run(trace, &s_on, SloSpec{10.0, 10.0});
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  ASSERT_TRUE(on.ok()) << on.status().ToString();

  EXPECT_EQ(off->prefix.hits, 0);
  EXPECT_GT(on->prefix.hits, 0);
  EXPECT_GT(on->prefill_tokens_skipped, 0);
  EXPECT_LT(on->prefill_tokens_computed, off->prefill_tokens_computed);
  // Skipped prefill positions are priced out of the iteration, so modeled
  // TTFT strictly improves on this hit-heavy trace.
  EXPECT_LT(on->report.mean_ttft, off->report.mean_ttft);
  // Shared positions cost one physical copy (note the pool's *peak* can
  // legitimately rise: the index deliberately retains popular prefixes
  // after their owners finish, trading free blocks for future hits).
  EXPECT_GT(on->prefix.shared_blocks, 0);
}

TEST(PrefixDeterminismTest, HitAccountingIdenticalAcrossBackends) {
  // Same trace, same scheduler policy, same pool geometry, arrivals spaced
  // far beyond iteration latencies: both backends see the same sequence of
  // fresh-prefill matches and completed-pass inserts, so every counter of
  // PrefixStats must agree — the acceptance bar for "both backends agree
  // on what a hit is worth". Runs through the differential harness, which
  // also pins completion order and prefill-skip accounting.
  const auto trace = Trace();
  testing_util::DiffOptions opts;
  opts.block_size = 4;
  opts.pool_blocks = 256;
  auto diff = testing_util::RunBackendDiff(trace, opts);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  testing_util::ExpectBackendAgreement(*diff);
  // The workload actually exercised sharing on both sides.
  EXPECT_GT(diff->engine.result.prefix.hits, 0);
  EXPECT_GT(diff->cost.result.prefill_tokens_skipped, 0);
}

TEST(PrefixDeterminismTest, LengthOnlyTraceParityAndSynthesizer) {
  // Length-only traces: with matching seed/vocab both backends expand a
  // request into the same synthesized content (workload/token_ids.h), so
  // their accounting agrees — and since per-id random content shares no
  // prefixes, sharing correctly earns nothing.
  std::vector<Request> trace(4);
  for (int i = 0; i < 4; ++i) {
    trace[i].id = i;
    trace[i].prompt_len = 20;
    trace[i].output_len = 3;
    trace[i].arrival = i * 1.0;
  }

  testing_util::DiffOptions opts;
  opts.block_size = 4;
  opts.pool_blocks = 256;
  auto diff = testing_util::RunBackendDiff(trace, opts);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  testing_util::ExpectBackendAgreement(*diff);
  EXPECT_EQ(diff->engine.result.prefix.lookups, 4);
  EXPECT_EQ(diff->engine.result.prefix.hits, 0);
  EXPECT_EQ(diff->cost.result.prefix.hits, 0);

  // EnsureTokenIds materializes the same expansion up front (and never
  // overwrites content a trace already carries).
  std::vector<Request> filled = trace;
  EnsureTokenIds(&filled, 7, ModelConfig::Tiny().vocab_size);
  for (const Request& r : filled) {
    EXPECT_EQ(static_cast<int32_t>(r.token_ids.size()), r.prompt_len);
    EXPECT_EQ(r.token_ids,
              DeterministicPromptTokens(r.id, 7, r.prompt_len,
                                        ModelConfig::Tiny().vocab_size));
  }
  std::vector<Request> again = filled;
  EnsureTokenIds(&again, 99, 8);  // different seed: existing ids kept
  for (size_t i = 0; i < filled.size(); ++i) {
    EXPECT_EQ(again[i].token_ids, filled[i].token_ids);
  }
}

}  // namespace
}  // namespace aptserve
