// Unit tests for Apt-Serve's adaptive runtime scheduling (paper §5):
// iteration-type decision, hybrid cache assignment under memory pressure,
// conversions, the SLO-aware fallback, and the decode->prefill fallback.
#include "core/apt_scheduler.h"

#include <gtest/gtest.h>

#include "core/apt_sarathi_scheduler.h"
#include "tests/scheduler_test_util.h"

namespace aptserve {
namespace {

using testutil::FindItem;
using testutil::HasItem;
using testutil::HasPreempt;
using testutil::SchedulerFixture;

AptConfig Cfg() {
  AptConfig c;
  c.slo = SloSpec{1.0, 1.0};
  return c;
}

TEST(AptSchedulerTest, PrefillWhenWaitingMoreUrgent) {
  SchedulerFixture fx;
  fx.AddWaiting(1, 64, 10, 0.0);                      // pending = 5.0
  fx.AddRunning(2, 64, 10, 2, CacheType::kKV, 4.9);   // pending = 0.1
  AptScheduler sched(Cfg());
  auto plan = sched.PlanIteration(fx.Input(5.0));
  ASSERT_FALSE(plan.items.empty());
  EXPECT_EQ(plan.items[0].id, 1);
  EXPECT_GT(plan.items[0].prefill_chunk, 0);
}

TEST(AptSchedulerTest, DecodeWhenRunningMoreUrgent) {
  SchedulerFixture fx;
  fx.AddWaiting(1, 64, 10, 4.95);                     // pending = 0.05
  fx.AddRunning(2, 64, 10, 2, CacheType::kKV, 0.0);   // pending = 5.0
  AptScheduler sched(Cfg());
  auto plan = sched.PlanIteration(fx.Input(5.0));
  ASSERT_FALSE(plan.items.empty());
  EXPECT_EQ(plan.items[0].id, 2);
  EXPECT_EQ(plan.items[0].prefill_chunk, 0);
}

TEST(AptSchedulerTest, AmpleMemoryAdmitsAllAsKv) {
  SchedulerFixture fx(4096, 16);
  for (int i = 0; i < 4; ++i) fx.AddWaiting(i, 64, 10, 0.1 * i);
  AptScheduler sched(Cfg());
  auto plan = sched.PlanIteration(fx.Input(1.0));
  ASSERT_EQ(plan.items.size(), 4u);
  for (const auto& item : plan.items) {
    EXPECT_EQ(item.cache_type, CacheType::kKV);
  }
}

TEST(AptSchedulerTest, MemoryPressureAssignsHiddenCache) {
  // Pool of 20 blocks; two waiting requests of 128 tokens: KV needs 16
  // blocks each (only one fits), hidden needs 8 each (both fit). With
  // pendings above the profitability threshold (but still within the TTFT
  // SLO, so no demotion) hidden doubles admission.
  SchedulerFixture fx(/*pool_blocks=*/20, /*block_size=*/16);
  fx.AddWaiting(1, 128, 10, 0.0);
  fx.AddWaiting(2, 128, 10, 0.0);
  AptScheduler sched(Cfg());
  auto plan = sched.PlanIteration(fx.Input(0.5));
  ASSERT_EQ(plan.items.size(), 2u);
  EXPECT_EQ(plan.items[0].cache_type, CacheType::kHidden);
  EXPECT_EQ(plan.items[1].cache_type, CacheType::kHidden);
}

TEST(AptSchedulerTest, HiddenDisabledNeverAssignsHidden) {
  SchedulerFixture fx(/*pool_blocks=*/20, /*block_size=*/16);
  fx.AddWaiting(1, 128, 10, 0.0);
  fx.AddWaiting(2, 128, 10, 0.0);
  AptConfig cfg = Cfg();
  cfg.enable_hidden = false;  // Table 4's KV-only ablation
  AptScheduler sched(cfg);
  auto plan = sched.PlanIteration(fx.Input(60.0));
  ASSERT_EQ(plan.items.size(), 1u);  // only one fits as KV
  EXPECT_EQ(plan.items[0].cache_type, CacheType::kKV);
}

TEST(AptSchedulerTest, DecodeEvictsLowestValuePerMemoryUnderPressure) {
  // Fill the pool so that not all running requests fit (each has KV cache
  // of 159 tokens = 20 blocks; pool 48 blocks; growth to 160 tokens).
  SchedulerFixture fx(/*pool_blocks=*/48, /*block_size=*/16);
  fx.AddRunning(1, 150, 30, 10, CacheType::kKV, 4.0);  // pending 1.0
  fx.AddRunning(2, 150, 30, 10, CacheType::kKV, 4.9);  // pending 0.1
  // Both are within TBT SLO... request 1 pending 1.0 == SLO boundary.
  AptScheduler sched(Cfg());
  auto plan = sched.PlanIteration(fx.Input(5.0));
  // 48 blocks / (20 blocks KV each) — both fit as KV (40 <= 48).
  EXPECT_EQ(plan.items.size() + plan.preempt.size(), 2u);
}

TEST(AptSchedulerTest, SloViolatedWaitingDemoted) {
  SchedulerFixture fx(/*pool_blocks=*/20, /*block_size=*/16);
  // Violated request (pending 50 > TTFT 1.0) vs healthy one (pending 0.5):
  // only one KV slot available; the healthy request must win despite the
  // smaller raw pending.
  fx.AddWaiting(1, 128, 10, 0.0);    // pending 50, violated
  fx.AddWaiting(2, 128, 10, 49.5);   // pending 0.5
  AptConfig cfg = Cfg();
  cfg.enable_hidden = false;
  AptScheduler sched(cfg);
  auto plan = sched.PlanIteration(fx.Input(50.0));
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_EQ(plan.items[0].id, 2);
}

TEST(AptSchedulerTest, DecayVariantKeepsViolatedCompetitive) {
  SchedulerFixture fx(/*pool_blocks=*/20, /*block_size=*/16);
  fx.AddWaiting(1, 128, 10, 0.0);   // pending 50, violated; decayed to 20
  fx.AddWaiting(2, 128, 10, 49.5);  // pending 0.5
  AptConfig cfg = Cfg();
  cfg.enable_hidden = false;
  cfg.violation_decay = 0.4;  // Apt-Serve* (§6.6)
  AptScheduler sched(cfg);
  auto plan = sched.PlanIteration(fx.Input(50.0));
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_EQ(plan.items[0].id, 1);
}

TEST(AptSchedulerTest, FallsBackToDecodeWhenPrefillCannotFit) {
  // Waiting queue more urgent, but zero free memory: the scheduler must
  // decode (making progress) instead of returning an empty prefill plan.
  SchedulerFixture fx(/*pool_blocks=*/20, /*block_size=*/16);
  fx.AddRunning(1, 150, 30, 10, CacheType::kKV, 9.9);  // 20 blocks, all
  fx.AddWaiting(2, 300, 10, 0.0);                      // pending 10, huge
  AptScheduler sched(Cfg());
  auto plan = sched.PlanIteration(fx.Input(10.0));
  ASSERT_FALSE(plan.items.empty());
  EXPECT_EQ(plan.items[0].id, 1);
  EXPECT_EQ(plan.items[0].prefill_chunk, 0);
}

TEST(AptSchedulerTest, EmptyInputEmptyPlan) {
  SchedulerFixture fx;
  AptScheduler sched(Cfg());
  auto plan = sched.PlanIteration(fx.Input(0.0));
  EXPECT_TRUE(plan.items.empty());
}

TEST(AptSchedulerTest, NoUpgradeConversionMidFlight) {
  // A running hidden-cache request with ample memory: the solver's value
  // model would upgrade it to KV, but a switch costs a full re-prefill, so
  // the scheduler keeps it decoding on its hidden cache.
  SchedulerFixture fx(4096, 16);
  fx.AddRunning(1, 64, 30, 5, CacheType::kHidden, 4.0);
  AptScheduler sched(Cfg());
  auto plan = sched.PlanIteration(fx.Input(5.0));
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_EQ(plan.items[0].id, 1);
  EXPECT_EQ(plan.items[0].cache_type, CacheType::kHidden);
  EXPECT_TRUE(plan.preempt.empty());
}

TEST(AptSchedulerTest, DecodePressureEvictsAndKeepsOthersDecoding) {
  // Decode iteration under memory pressure: each request holds 20 blocks
  // (160 tokens) and needs 22 for growth (161 tokens crosses a block
  // boundary); 3 x 22 = 66 > 60 pool blocks, so the solver cannot keep all
  // three — someone is evicted, the rest decode in place with their
  // current cache type.
  SchedulerFixture fx(/*pool_blocks=*/60, /*block_size=*/16);
  fx.AddRunning(1, 150, 30, 11, CacheType::kKV, 4.2);
  fx.AddRunning(2, 150, 30, 11, CacheType::kKV, 4.3);
  fx.AddRunning(3, 150, 30, 11, CacheType::kKV, 4.4);
  AptConfig cfg = Cfg();
  cfg.slo.tbt_p99_s = 10.0;  // keep everyone un-violated
  AptScheduler sched(cfg);
  auto plan = sched.PlanIteration(fx.Input(5.0));
  EXPECT_EQ(plan.items.size() + plan.preempt.size(), 3u);
  EXPECT_GE(plan.preempt.size(), 1u);
  EXPECT_GE(plan.items.size(), 1u);
  for (const auto& item : plan.items) {
    EXPECT_EQ(item.prefill_chunk, 0);
    EXPECT_EQ(item.cache_type, CacheType::kKV);
  }
}

TEST(AptSarathiSchedulerTest, MixedIterationWithValueOrderedChunks) {
  AptSarathiConfig cfg;
  cfg.slo = SloSpec{1.0, 1.0};
  cfg.token_budget = 256;
  SchedulerFixture fx(4096, 16);
  fx.AddRunning(1, 64, 30, 5, CacheType::kKV, 4.9);
  fx.AddWaiting(2, 400, 10, 4.0);  // pending 1.0 but violated? 1.0 <= 1.0 ok
  fx.AddWaiting(3, 100, 10, 4.5);  // pending 0.5, denser value
  AptSarathiScheduler sched(cfg);
  auto plan = sched.PlanIteration(fx.Input(5.0));
  // Decode rides along; remaining 255 tokens go to prefill chunks.
  ASSERT_GE(plan.items.size(), 2u);
  EXPECT_EQ(plan.items[0].id, 1);
  EXPECT_EQ(plan.items[0].prefill_chunk, 0);
  int64_t chunk_tokens = 0;
  for (const auto& item : plan.items) chunk_tokens += item.prefill_chunk;
  EXPECT_LE(chunk_tokens, 255);
}

TEST(AptSarathiSchedulerTest, BudgetBindsChunks) {
  AptSarathiConfig cfg;
  cfg.slo = SloSpec{1.0, 1.0};
  cfg.token_budget = 32;
  SchedulerFixture fx(4096, 16);
  fx.AddWaiting(1, 400, 10, 0.0);
  AptSarathiScheduler sched(cfg);
  auto plan = sched.PlanIteration(fx.Input(1.0));
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_EQ(plan.items[0].prefill_chunk, 32);
}

TEST(AptSarathiSchedulerTest, MidPassChunkKeepsCacheType) {
  AptSarathiConfig cfg;
  cfg.slo = SloSpec{1.0, 1.0};
  SchedulerFixture fx(4096, 16);
  SimRequest* w = fx.AddWaiting(1, 300, 10, 0.0);
  w->cache_type = CacheType::kHidden;
  w->prefill_progress = 100;
  ASSERT_TRUE(fx.assigner.CreateFilled(1, CacheType::kHidden, 100).ok());
  w->cached_tokens = 100;
  AptSarathiScheduler sched(cfg);
  auto plan = sched.PlanIteration(fx.Input(1.0));
  const ScheduledItem* item = FindItem(plan, 1);
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(item->cache_type, CacheType::kHidden);
}

}  // namespace
}  // namespace aptserve
