#include "engine/sampling.h"

#include <gtest/gtest.h>

#include <map>

namespace aptserve {
namespace {

std::vector<float> Logits() { return {0.0f, 1.0f, 3.0f, 2.0f, -1.0f}; }

TEST(SamplingTest, GreedyIsArgmax) {
  auto r = SampleToken(Logits(), SamplingParams::Greedy(), nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
}

TEST(SamplingTest, EmptyLogitsRejected) {
  EXPECT_FALSE(SampleToken({}, SamplingParams::Greedy(), nullptr).ok());
}

TEST(SamplingTest, StochasticNeedsRng) {
  EXPECT_FALSE(
      SampleToken(Logits(), SamplingParams::Temperature(1.0), nullptr).ok());
}

TEST(SamplingTest, InvalidParamsRejected) {
  Rng rng(1);
  EXPECT_FALSE(
      SampleToken(Logits(), SamplingParams::Temperature(0.0), &rng).ok());
  EXPECT_FALSE(SampleToken(Logits(), SamplingParams::TopK(0), &rng).ok());
  EXPECT_FALSE(SampleToken(Logits(), SamplingParams::TopP(0.0), &rng).ok());
  EXPECT_FALSE(SampleToken(Logits(), SamplingParams::TopP(1.5), &rng).ok());
}

TEST(SamplingTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 50; ++i) {
    auto ra = SampleToken(Logits(), SamplingParams::Temperature(0.8), &a);
    auto rb = SampleToken(Logits(), SamplingParams::Temperature(0.8), &b);
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_EQ(*ra, *rb);
  }
}

TEST(SamplingTest, LowTemperatureApproachesGreedy) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    auto r = SampleToken(Logits(), SamplingParams::Temperature(0.01), &rng);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, 2);
  }
}

TEST(SamplingTest, TemperatureFrequenciesTrackSoftmax) {
  Rng rng(5);
  std::map<int32_t, int> counts;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    auto r = SampleToken(Logits(), SamplingParams::Temperature(1.0), &rng);
    ASSERT_TRUE(r.ok());
    ++counts[*r];
  }
  // softmax of {0,1,3,2,-1}: p2 ~= 0.636, p3 ~= 0.234, p1 ~= 0.086.
  EXPECT_NEAR(counts[2] / double(n), 0.636, 0.02);
  EXPECT_NEAR(counts[3] / double(n), 0.234, 0.02);
  EXPECT_NEAR(counts[1] / double(n), 0.086, 0.01);
}

TEST(SamplingTest, TopKRestrictsSupport) {
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    auto r = SampleToken(Logits(), SamplingParams::TopK(2), &rng);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(*r == 2 || *r == 3) << *r;  // the two largest logits
  }
}

TEST(SamplingTest, TopKLargerThanVocabIsPlainTemperature) {
  Rng rng(9);
  std::map<int32_t, int> counts;
  for (int i = 0; i < 2000; ++i) {
    auto r = SampleToken(Logits(), SamplingParams::TopK(100), &rng);
    ASSERT_TRUE(r.ok());
    ++counts[*r];
  }
  EXPECT_GT(counts.size(), 2u);  // full support reachable
}

TEST(SamplingTest, TopPNucleus) {
  Rng rng(11);
  // p2 ~= 0.636 alone exceeds top_p = 0.5, so the nucleus is {2} only.
  for (int i = 0; i < 300; ++i) {
    auto r = SampleToken(Logits(), SamplingParams::TopP(0.5), &rng);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, 2);
  }
  // top_p = 0.85 admits {2, 3} (0.636, then 0.870 >= 0.85 stops).
  std::map<int32_t, int> counts;
  for (int i = 0; i < 2000; ++i) {
    auto r = SampleToken(Logits(), SamplingParams::TopP(0.85), &rng);
    ASSERT_TRUE(r.ok());
    ++counts[*r];
  }
  EXPECT_EQ(counts.count(0), 0u);
  EXPECT_EQ(counts.count(4), 0u);
}

TEST(SamplingTest, TopPOneIsFullDistribution) {
  Rng rng(13);
  std::map<int32_t, int> counts;
  for (int i = 0; i < 5000; ++i) {
    auto r = SampleToken(Logits(), SamplingParams::TopP(1.0), &rng);
    ASSERT_TRUE(r.ok());
    ++counts[*r];
  }
  EXPECT_GE(counts.size(), 4u);
}

}  // namespace
}  // namespace aptserve
