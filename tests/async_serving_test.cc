// Async wall-clock serving: the replay-based differential suite pinning
// the determinism contract (async_serving.h / DESIGN.md "Async serving").
//
// The virtual-time fleet is the bit-for-bit reference. The async mode runs
// the same trace through real worker threads with real-time arrival replay
// and mid-step injection; its batch composition is wall-clock-dependent
// and therefore nondeterministic — but every request's token stream must
// be bit-identical to the virtual run, because (a) per-position logits are
// a pure function of the request's own tokens, (b) sampling is
// counter-based per (seed, request, position), and (c) routing replays the
// virtual assignment. The differential tests enforce exactly that, across
// seeds (overridable via APTSERVE_FUZZ_SEEDS for the CI matrix), engine
// thread counts, sampling modes, and live shedding migration.
#include "serve/async_serving.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/fcfs_scheduler.h"
#include "common/env.h"
#include "common/rng.h"
#include "engine/model_config.h"
#include "engine/sampling.h"
#include "serve/fleet_controller.h"
#include "serve/inference_backend.h"
#include "serve/multi_instance.h"
#include "workload/request.h"

namespace aptserve {
namespace {

using TokenMap = std::unordered_map<RequestId, std::vector<int32_t>>;

std::vector<uint64_t> FuzzSeeds() {
  // Strict parse with a warning on malformed tokens (std::stoull threw on
  // garbage and silently truncated partial parses like "4x").
  return env::FuzzSeedsFromEnv({41, 137});
}

std::vector<Request> TinyTrace(int32_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Request> trace;
  trace.reserve(n);
  for (int32_t i = 0; i < n; ++i) {
    Request r;
    r.id = i;
    r.prompt_len = static_cast<int32_t>(rng.UniformInt(4, 14));
    r.output_len = static_cast<int32_t>(rng.UniformInt(2, 6));
    r.arrival = 0.02 * i;
    trace.push_back(r);
  }
  return trace;
}

/// Factory pair: per-instance real engines writing finished token streams
/// into caller-owned sinks (one map per instance; instances run on
/// separate threads, so sinks must not be shared).
BackendFactory EngineFactory(std::vector<TokenMap>* sinks, uint64_t seed,
                             const SamplingParams& sampling,
                             int32_t num_threads) {
  return [sinks, seed, sampling,
          num_threads](int32_t i) -> StatusOr<std::unique_ptr<ExecutionBackend>> {
    InferenceBackendOptions options;
    options.virtual_timing = true;
    options.prompt_seed = seed + 100;
    options.runtime.num_threads = num_threads;
    options.finished_sink = &(*sinks)[static_cast<size_t>(i)];
    return std::unique_ptr<ExecutionBackend>(std::make_unique<InferenceBackend>(
        ModelConfig::Tiny(), /*weight_seed=*/seed + i,
        /*num_blocks=*/128, /*block_size=*/8, sampling, options));
  };
}

SchedulerFactory Fcfs() {
  return [] { return std::make_unique<FcfsScheduler>(); };
}

TokenMap Flatten(std::vector<TokenMap> sinks) {
  TokenMap all;
  for (TokenMap& m : sinks) {
    for (auto& [id, toks] : m) {
      EXPECT_EQ(all.count(id), 0u) << "request " << id << " finished twice";
      all[id] = std::move(toks);
    }
  }
  return all;
}

void ExpectSameTokens(const TokenMap& want, const TokenMap& got) {
  ASSERT_EQ(want.size(), got.size());
  for (const auto& [id, toks] : want) {
    auto it = got.find(id);
    ASSERT_NE(it, got.end()) << "request " << id << " missing";
    ASSERT_EQ(toks, it->second) << "token stream diverged for request " << id;
  }
}

MultiInstanceRunner TwoInstanceRunner() {
  DispatchConfig dispatch;
  dispatch.n_instances = 2;
  dispatch.policy = DispatchPolicy::kRoundRobin;
  ServingLoopConfig loop;
  loop.max_batch_size = INT32_MAX;
  return MultiInstanceRunner(dispatch, loop);
}

AsyncServingConfig FastReplay() {
  AsyncServingConfig async;
  // Replay the whole virtual arrival span in well under a second of wall
  // time; continuous batching still sees real interleaving.
  async.replay_speedup = 2000.0;
  async.max_wall_seconds = 60.0;
  return async;
}

TEST(AsyncServingTest, GreedyTokenStreamsMatchVirtualMode) {
  for (const uint64_t seed : FuzzSeeds()) {
    for (const int32_t threads : {1, 4}) {
      MultiInstanceRunner runner = TwoInstanceRunner();
      const auto trace = TinyTrace(24, seed);
      const SamplingParams sampling = SamplingParams::Greedy();

      std::vector<TokenMap> virt_sinks(2);
      auto virt = runner.Run(trace, Fcfs(),
                             EngineFactory(&virt_sinks, seed, sampling, threads),
                             SloSpec{5.0, 5.0});
      ASSERT_TRUE(virt.ok()) << virt.status().ToString();

      std::vector<TokenMap> async_sinks(2);
      auto live = runner.RunAsync(
          trace, Fcfs(), EngineFactory(&async_sinks, seed, sampling, threads),
          SloSpec{5.0, 5.0}, FastReplay());
      ASSERT_TRUE(live.ok()) << live.status().ToString();

      const TokenMap want = Flatten(std::move(virt_sinks));
      const TokenMap got = Flatten(std::move(async_sinks));
      ASSERT_EQ(want.size(), trace.size());
      ExpectSameTokens(want, got);
      // Routing replay: the same instances served the same request counts.
      EXPECT_EQ(virt->requests_per_instance,
                live->serve.requests_per_instance)
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(AsyncServingTest, StochasticTokenStreamsMatchVirtualMode) {
  // Counter-based sampling makes stochastic streams a pure function of
  // (seed, request, position) — invariant to wall-clock batch composition.
  const uint64_t seed = FuzzSeeds().front();
  MultiInstanceRunner runner = TwoInstanceRunner();
  const auto trace = TinyTrace(20, seed + 1);
  const SamplingParams sampling = SamplingParams::TopK(8, 0.9);

  std::vector<TokenMap> virt_sinks(2);
  auto virt = runner.Run(trace, Fcfs(),
                         EngineFactory(&virt_sinks, seed, sampling, 1),
                         SloSpec{5.0, 5.0});
  ASSERT_TRUE(virt.ok()) << virt.status().ToString();

  std::vector<TokenMap> async_sinks(2);
  auto live =
      runner.RunAsync(trace, Fcfs(), EngineFactory(&async_sinks, seed, sampling, 1),
                      SloSpec{5.0, 5.0}, FastReplay());
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  ExpectSameTokens(Flatten(std::move(virt_sinks)),
                   Flatten(std::move(async_sinks)));
}

TEST(AsyncServingTest, SheddingMigrationPreservesTokensAndCountsRequests) {
  // Aggressive shedding: workers export waiting requests (cache state
  // included) to the coolest instance mid-run. Conservation: every request
  // finishes exactly once somewhere; purity: token streams still match the
  // (shed-free) virtual reference bit-for-bit.
  const uint64_t seed = FuzzSeeds().front();
  MultiInstanceRunner runner = TwoInstanceRunner();
  const auto trace = TinyTrace(24, seed + 2);
  const SamplingParams sampling = SamplingParams::Greedy();

  std::vector<TokenMap> virt_sinks(2);
  auto virt = runner.Run(trace, Fcfs(),
                         EngineFactory(&virt_sinks, seed, sampling, 1),
                         SloSpec{5.0, 5.0});
  ASSERT_TRUE(virt.ok()) << virt.status().ToString();

  AsyncServingConfig async = FastReplay();
  async.shed_queue_depth = 1;  // shed on any queue depth over one
  std::vector<TokenMap> async_sinks(2);
  auto live =
      runner.RunAsync(trace, Fcfs(), EngineFactory(&async_sinks, seed, sampling, 1),
                      SloSpec{5.0, 5.0}, async);
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  int32_t total = 0;
  for (const int32_t c : live->serve.requests_per_instance) total += c;
  EXPECT_EQ(total, static_cast<int32_t>(trace.size()));
  EXPECT_GE(live->shed_migrations, 0);
  ExpectSameTokens(Flatten(std::move(virt_sinks)),
                   Flatten(std::move(async_sinks)));
}

TEST(AsyncServingTest, WallMetricsAreInternallyConsistent) {
  const uint64_t seed = FuzzSeeds().front();
  MultiInstanceRunner runner = TwoInstanceRunner();
  const auto trace = TinyTrace(16, seed + 3);

  std::vector<TokenMap> sinks(2);
  auto live = runner.RunAsync(
      trace, Fcfs(), EngineFactory(&sinks, seed, SamplingParams::Greedy(), 1),
      SloSpec{5.0, 5.0}, FastReplay());
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  const WallLatencyReport& wall = live->wall;
  EXPECT_EQ(wall.requests, static_cast<int64_t>(trace.size()));
  EXPECT_EQ(wall.ttft.count(), trace.size());
  EXPECT_GT(wall.tokens, 0);
  EXPECT_GT(wall.duration_s, 0.0);
  EXPECT_GT(wall.throughput_tok_s, 0.0);
  // Quantiles are monotone and clamped to the observed range.
  EXPECT_LE(wall.ttft.P50(), wall.ttft.P95());
  EXPECT_LE(wall.ttft.P95(), wall.ttft.P99());
  EXPECT_GE(wall.ttft.P50(), wall.ttft.min());
  EXPECT_LE(wall.ttft.P99(), wall.ttft.max());
  EXPECT_GT(live->wall_duration_s, 0.0);
  EXPECT_LE(live->arrival_queue_high_water, AsyncServingConfig{}.queue_capacity);
  // Virtual-frame report still comes along for the ride.
  EXPECT_EQ(live->serve.combined.ttfts.count(), trace.size());
}

TEST(AsyncServingTest, ElasticFleetConfigRejected) {
  FleetConfig config;
  config.router.n_instances = 2;
  config.scaling.push_back(ScalingRule::QueueDepth());
  FleetController controller(config);
  std::vector<TokenMap> sinks(2);
  auto result = controller.RunAsync(
      TinyTrace(4, 1), Fcfs(),
      EngineFactory(&sinks, 1, SamplingParams::Greedy(), 1), SloSpec{5.0, 5.0},
      AsyncServingConfig{});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(AsyncServingTest, SingleInstanceFleetDrains) {
  // Degenerate fleet: one worker, everything through one queue; a lone
  // instance must also receive its own shed back without deadlocking.
  const uint64_t seed = FuzzSeeds().front();
  DispatchConfig dispatch;
  dispatch.n_instances = 1;
  dispatch.policy = DispatchPolicy::kRoundRobin;
  MultiInstanceRunner runner(dispatch, ServingLoopConfig{});
  const auto trace = TinyTrace(10, seed + 4);

  AsyncServingConfig async = FastReplay();
  async.shed_queue_depth = 1;
  std::vector<TokenMap> sinks(1);
  auto live = runner.RunAsync(
      trace, Fcfs(), EngineFactory(&sinks, seed, SamplingParams::Greedy(), 1),
      SloSpec{5.0, 5.0}, async);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_EQ(Flatten(std::move(sinks)).size(), trace.size());
}

}  // namespace
}  // namespace aptserve
