// Determinism of the InferenceBackend serving path: with virtual timing
// (fixed per-item latency instead of measured wall time) the whole run is a
// pure function of the seeds — same trace, same scheduler, same seeds must
// give identical tokens, TTFT/TBT samples, and report.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/fcfs_scheduler.h"
#include "baselines/sarathi_scheduler.h"
#include "core/apt_scheduler.h"
#include "engine/serving_engine.h"
#include "workload/arrival.h"

namespace aptserve {
namespace {

std::vector<Request> TinyTrace(int32_t n, double rate, uint64_t seed = 4) {
  Rng rng(seed);
  auto arrivals = PoissonArrivals(rate, n, &rng);
  EXPECT_TRUE(arrivals.ok());
  std::vector<Request> trace;
  for (int32_t i = 0; i < n; ++i) {
    Request r;
    r.id = i;
    r.prompt_len = static_cast<int32_t>(rng.UniformInt(4, 24));
    r.output_len = static_cast<int32_t>(rng.UniformInt(2, 12));
    r.arrival = (*arrivals)[i];
    trace.push_back(r);
  }
  return trace;
}

ServingEngineConfig Cfg() {
  ServingEngineConfig cfg;
  cfg.model = ModelConfig::Tiny();
  cfg.num_blocks = 96;
  cfg.block_size = 8;
  cfg.slo = SloSpec{5.0, 5.0};
  cfg.calibrate_rho = false;  // measured rho would be timing-dependent
  cfg.virtual_timing = true;
  return cfg;
}

std::unique_ptr<Scheduler> Make(const std::string& kind, const SloSpec& slo) {
  if (kind == "fcfs") return std::make_unique<FcfsScheduler>();
  if (kind == "sarathi") {
    SarathiConfig c;
    c.token_budget = 64;
    c.chunk_size = 16;
    return std::make_unique<SarathiScheduler>(c);
  }
  AptConfig c;
  c.slo = slo;
  c.max_prefill_tokens = 128;
  return std::make_unique<AptScheduler>(c);
}

class DeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismTest, SameSeedsSameTokensAndLatencies) {
  const auto trace = TinyTrace(20, 50.0);
  ServingEngineConfig cfg = Cfg();

  StatusOr<ServingEngineResult> runs[2] = {Status::Internal("unset"),
                                           Status::Internal("unset")};
  for (int i = 0; i < 2; ++i) {
    ServingEngine serving(cfg);  // fresh engine, same weight/prompt seeds
    auto sched = Make(GetParam(), cfg.slo);
    runs[i] = serving.Serve(trace, sched.get());
    ASSERT_TRUE(runs[i].ok()) << runs[i].status().ToString();
  }
  const ServingEngineResult& a = *runs[0];
  const ServingEngineResult& b = *runs[1];

  // Same tokens, request by request.
  ASSERT_EQ(a.tokens.size(), b.tokens.size());
  ASSERT_EQ(a.tokens.size(), trace.size());
  for (const auto& [id, toks] : a.tokens) {
    auto it = b.tokens.find(id);
    ASSERT_NE(it, b.tokens.end());
    EXPECT_EQ(toks, it->second) << "tokens diverged for request " << id;
  }

  // Same virtual timeline: identical TTFT/TBT samples and aggregates.
  EXPECT_EQ(a.tokens_generated, b.tokens_generated);
  EXPECT_EQ(a.compute_seconds, b.compute_seconds);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.report.iterations, b.report.iterations);
  EXPECT_EQ(a.report.total_serving_time, b.report.total_serving_time);
  EXPECT_EQ(a.report.slo_attainment, b.report.slo_attainment);
  EXPECT_EQ(a.report.mean_ttft, b.report.mean_ttft);
  EXPECT_EQ(a.report.ttfts.samples(), b.report.ttfts.samples());
  EXPECT_EQ(a.report.p99_tbts.samples(), b.report.p99_tbts.samples());
}

TEST_P(DeterminismTest, DifferentPromptSeedChangesTokens) {
  const auto trace = TinyTrace(8, 1000.0, 6);
  ServingEngineConfig cfg = Cfg();
  ServingEngine a(cfg);
  cfg.prompt_seed = 1234;
  ServingEngine b(cfg);
  auto sa = Make(GetParam(), cfg.slo);
  auto sb = Make(GetParam(), cfg.slo);
  auto ra = a.Serve(trace, sa.get());
  auto rb = b.Serve(trace, sb.get());
  ASSERT_TRUE(ra.ok() && rb.ok());
  bool any_diff = false;
  for (const auto& [id, toks] : ra->tokens) {
    auto it = rb->tokens.find(id);
    ASSERT_NE(it, rb->tokens.end());
    if (toks != it->second) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "prompt seed had no effect on any sequence";
}

INSTANTIATE_TEST_SUITE_P(Schedulers, DeterminismTest,
                         ::testing::Values("fcfs", "sarathi", "apt"),
                         [](const auto& info) { return info.param; });

TEST(VirtualTimingTest, MemoryPressureRunStaysDeterministic) {
  ServingEngineConfig cfg = Cfg();
  cfg.num_blocks = 24;  // tight: forces preemption under load
  const auto trace = TinyTrace(16, 1000.0, 9);
  StatusOr<ServingEngineResult> runs[2] = {Status::Internal("unset"),
                                           Status::Internal("unset")};
  for (int i = 0; i < 2; ++i) {
    ServingEngine serving(cfg);
    FcfsScheduler sched;
    runs[i] = serving.Serve(trace, &sched);
    ASSERT_TRUE(runs[i].ok()) << runs[i].status().ToString();
  }
  EXPECT_GT(runs[0]->preemptions + runs[0]->report.conversions, 0);
  EXPECT_EQ(runs[0]->report.total_serving_time,
            runs[1]->report.total_serving_time);
  EXPECT_EQ(runs[0]->report.ttfts.samples(),
            runs[1]->report.ttfts.samples());
}

}  // namespace
}  // namespace aptserve
