// Golden tests for the blocked/batched kernel tier: every blocked kernel
// must be bit-identical (exact float equality) to the scalar reference
// kernels, across odd shapes (non-multiples of the block size, rows=1,
// cols=1, batch=1) and at any thread count. Also pins the transformer
// forward paths: pool and no-pool runs produce identical logits.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cache/block_pool.h"
#include "cache/hybrid_assigner.h"
#include "common/rng.h"
#include "engine/block_storage.h"
#include "engine/ops.h"
#include "engine/transformer.h"
#include "runtime/thread_pool.h"

namespace aptserve {
namespace {

std::vector<float> RandomVec(int64_t n, Rng* rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng->Normal());
  return v;
}

runtime::RuntimeConfig Threads(int32_t n, bool deterministic = true) {
  runtime::RuntimeConfig cfg;
  cfg.num_threads = n;
  cfg.deterministic = deterministic;
  return cfg;
}

// Shapes chosen to straddle the kRowTile=32 blocking: 1, tile-1, tile,
// tile+1, and a few primes.
const int32_t kShapes[] = {1, 2, 3, 31, 32, 33, 65};

class ParallelOpsTest : public ::testing::TestWithParam<bool> {
 protected:
  /// Null for the serial-path run, a 4-thread pool for the parallel run.
  runtime::ThreadPool* pool() {
    if (!GetParam()) return nullptr;
    if (!pool_) pool_ = std::make_unique<runtime::ThreadPool>(Threads(4));
    return pool_.get();
  }

 private:
  std::unique_ptr<runtime::ThreadPool> pool_;
};

TEST_P(ParallelOpsTest, MatMatMatchesMatVecExactly) {
  Rng rng(11);
  for (int32_t batch : kShapes) {
    for (int32_t rows : kShapes) {
      for (int32_t cols : {1, 3, 33}) {
        const auto w = RandomVec(static_cast<int64_t>(rows) * cols, &rng);
        const auto x = RandomVec(static_cast<int64_t>(batch) * cols, &rng);
        std::vector<float> want(static_cast<int64_t>(batch) * rows);
        for (int32_t b = 0; b < batch; ++b) {
          ops::MatVec(w.data(), x.data() + static_cast<int64_t>(b) * cols,
                      want.data() + static_cast<int64_t>(b) * rows, rows,
                      cols);
        }
        std::vector<float> got(want.size(), -1.0f);
        ops::MatMat(w.data(), x.data(), got.data(), batch, rows, cols,
                    pool());
        ASSERT_EQ(want, got) << "batch=" << batch << " rows=" << rows
                             << " cols=" << cols;
      }
    }
  }
}

TEST_P(ParallelOpsTest, MatVecBlockedMatchesMatVecExactly) {
  Rng rng(12);
  for (int32_t rows : kShapes) {
    for (int32_t cols : kShapes) {
      const auto w = RandomVec(static_cast<int64_t>(rows) * cols, &rng);
      const auto x = RandomVec(cols, &rng);
      std::vector<float> want(rows), got(rows, -1.0f);
      ops::MatVec(w.data(), x.data(), want.data(), rows, cols);
      ops::MatVecBlocked(w.data(), x.data(), got.data(), rows, cols, pool());
      ASSERT_EQ(want, got) << "rows=" << rows << " cols=" << cols;
    }
  }
}

TEST_P(ParallelOpsTest, LayerNormBatchMatchesLayerNormExactly) {
  Rng rng(13);
  for (int32_t batch : kShapes) {
    for (int32_t n : {1, 2, 31, 64}) {
      const auto x = RandomVec(static_cast<int64_t>(batch) * n, &rng);
      const auto gain = RandomVec(n, &rng);
      const auto bias = RandomVec(n, &rng);
      std::vector<float> want(x.size()), got(x.size(), -1.0f);
      for (int32_t b = 0; b < batch; ++b) {
        ops::LayerNorm(x.data() + static_cast<int64_t>(b) * n, gain.data(),
                       bias.data(), want.data() + static_cast<int64_t>(b) * n,
                       n);
      }
      ops::LayerNormBatch(x.data(), gain.data(), bias.data(), got.data(),
                          batch, n, pool());
      ASSERT_EQ(want, got) << "batch=" << batch << " n=" << n;
    }
  }
}

TEST_P(ParallelOpsTest, FusedLayerNormMatMatMatchesUnfusedExactly) {
  Rng rng(14);
  // rows=257 also exercises the normalize-once row-parallel branch.
  for (int32_t batch : {1, 3, 33}) {
    for (int32_t rows : {1, 33, 257}) {
      const int32_t cols = 31;
      const auto x = RandomVec(static_cast<int64_t>(batch) * cols, &rng);
      const auto gain = RandomVec(cols, &rng);
      const auto bias = RandomVec(cols, &rng);
      const auto w = RandomVec(static_cast<int64_t>(rows) * cols, &rng);
      std::vector<float> ln(cols);
      std::vector<float> want(static_cast<int64_t>(batch) * rows);
      for (int32_t b = 0; b < batch; ++b) {
        ops::LayerNorm(x.data() + static_cast<int64_t>(b) * cols, gain.data(),
                       bias.data(), ln.data(), cols);
        ops::MatVec(w.data(), ln.data(),
                    want.data() + static_cast<int64_t>(b) * rows, rows, cols);
      }
      std::vector<float> got(want.size(), -1.0f);
      ops::FusedLayerNormMatMat(x.data(), gain.data(), bias.data(), w.data(),
                                got.data(), batch, rows, cols, pool());
      ASSERT_EQ(want, got) << "batch=" << batch << " rows=" << rows;
    }
  }
}

TEST_P(ParallelOpsTest, FusedMatMatActMatchesUnfusedExactly) {
  Rng rng(15);
  for (bool use_relu : {false, true}) {
    for (int32_t batch : {1, 5, 33}) {
      const int32_t rows = 65, cols = 33;
      const auto w = RandomVec(static_cast<int64_t>(rows) * cols, &rng);
      const auto x = RandomVec(static_cast<int64_t>(batch) * cols, &rng);
      std::vector<float> want(static_cast<int64_t>(batch) * rows);
      for (int32_t b = 0; b < batch; ++b) {
        ops::MatVec(w.data(), x.data() + static_cast<int64_t>(b) * cols,
                    want.data() + static_cast<int64_t>(b) * rows, rows, cols);
      }
      if (use_relu) {
        ops::Relu(want.data(), static_cast<int32_t>(want.size()));
      } else {
        ops::Gelu(want.data(), static_cast<int32_t>(want.size()));
      }
      std::vector<float> got(want.size(), -1.0f);
      ops::FusedMatMatAct(w.data(), x.data(), got.data(), batch, rows, cols,
                          use_relu, pool());
      ASSERT_EQ(want, got) << "relu=" << use_relu << " batch=" << batch;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, ParallelOpsTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "pool4" : "serial";
                         });

// ---- Transformer forward paths: pool vs serial bit-identity ---------------

std::vector<int32_t> MakeTokens(int32_t n, uint64_t seed, int32_t vocab) {
  Rng rng(seed);
  std::vector<int32_t> t(n);
  for (int32_t& v : t) {
    v = static_cast<int32_t>(rng.UniformInt(0, vocab - 1));
  }
  return t;
}

TEST(ParallelTransformerTest, ForwardFullBitIdenticalAcrossThreadCounts) {
  const ModelConfig cfg = ModelConfig::Tiny();
  TransformerModel model(ModelWeights::Random(cfg, 5));
  const auto tokens = MakeTokens(23, 7, cfg.vocab_size);
  auto serial = model.ForwardFull(tokens);
  ASSERT_TRUE(serial.ok());
  for (bool deterministic : {true, false}) {
    runtime::ThreadPool pool(Threads(4, deterministic));
    auto parallel = model.ForwardFull(tokens, &pool);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(*serial, *parallel) << "deterministic=" << deterministic;
  }
}

TEST(ParallelTransformerTest, CachedPathsBitIdenticalAcrossThreadCounts) {
  const ModelConfig cfg = ModelConfig::Tiny();
  TransformerModel model(ModelWeights::Random(cfg, 6));
  const auto tokens = MakeTokens(17, 8, cfg.vocab_size);
  const int32_t n = static_cast<int32_t>(tokens.size());
  runtime::ThreadPool pool(Threads(4));

  for (CacheType type : {CacheType::kKV, CacheType::kHidden}) {
    auto run = [&](runtime::ThreadPool* p, bool chunked) {
      BlockPool blocks(32, 4);
      BlockStorage storage(32, 4, cfg.n_layers, cfg.d_model);
      HybridCacheAssigner assigner(&blocks);
      EXPECT_TRUE(assigner.CreateFilled(1, type, n).ok());
      const CacheMap* map = assigner.Find(1);
      std::vector<float> logits;
      if (chunked) {
        // Prefill the first half in one pass, then decode-style steps.
        const int32_t half = n / 2;
        std::vector<int32_t> head(tokens.begin(), tokens.begin() + half);
        EXPECT_TRUE(
            model.PrefillCached(head, 0, *map, &storage, &logits, p).ok());
        EXPECT_TRUE(
            model.PrefillCached(tokens, half, *map, &storage, &logits, p)
                .ok());
      } else {
        for (int32_t pos = 0; pos < n; ++pos) {
          EXPECT_TRUE(
              model.CachedStep(tokens[pos], pos, *map, &storage, &logits, p)
                  .ok());
        }
      }
      return logits;
    };
    for (bool chunked : {false, true}) {
      const auto serial = run(nullptr, chunked);
      const auto parallel = run(&pool, chunked);
      EXPECT_EQ(serial, parallel)
          << "type=" << (type == CacheType::kKV ? "kv" : "hidden")
          << " chunked=" << chunked;
    }
  }
}

}  // namespace
}  // namespace aptserve
